//! Symbol-domain Reed-Solomon code with a PGZ decoder.

use std::fmt;

use muse_gf::{Gf, GfError};

/// Error constructing an [`RsCode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// Underlying field construction failed.
    Field(GfError),
    /// `n` exceeds the field's maximum codeword length `2^s − 1`.
    TooLong {
        /// Requested codeword length in symbols.
        n: usize,
        /// The field's maximum length.
        max: usize,
    },
    /// `k ≥ n`, or the redundancy is not `2t` for `t ∈ {1, 2}`.
    BadGeometry {
        /// Requested codeword length in symbols.
        n: usize,
        /// Requested data length in symbols.
        k: usize,
    },
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Field(e) => write!(f, "field error: {e}"),
            Self::TooLong { n, max } => write!(f, "codeword length {n} exceeds field max {max}"),
            Self::BadGeometry { n, k } => write!(f, "unsupported RS geometry ({n},{k})"),
        }
    }
}

impl std::error::Error for RsError {}

impl From<GfError> for RsError {
    fn from(e: GfError) -> Self {
        Self::Field(e)
    }
}

/// Outcome of Reed-Solomon decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsDecoded {
    /// All syndromes were zero.
    Clean {
        /// The recovered data symbols.
        data: Vec<u16>,
    },
    /// Errors were located and corrected.
    Corrected {
        /// The recovered data symbols.
        data: Vec<u16>,
        /// `(position, error value)` pairs, positions in codeword order.
        errors: Vec<(usize, u16)>,
    },
    /// A detected-but-uncorrectable error.
    Detected,
}

impl RsDecoded {
    /// The data, if the word was clean or corrected.
    pub fn data(&self) -> Option<&[u16]> {
        match self {
            Self::Clean { data } | Self::Corrected { data, .. } => Some(data),
            Self::Detected => None,
        }
    }
}

/// A systematic Reed-Solomon code over GF(2^s).
///
/// The codeword vector `c[0..n]` holds the `2t` parity symbols in positions
/// `0..2t` and data in positions `2t..n` (remainder encoding: the codeword
/// polynomial is divisible by the generator `g(x) = Π (x − α^i)`,
/// `i ∈ [0, 2t)`).
///
/// # Examples
///
/// ```
/// use muse_rs::{RsCode, RsDecoded};
///
/// # fn main() -> Result<(), muse_rs::RsError> {
/// // RS(18,16) over GF(256): the paper's RS(144,128) ChipKill baseline.
/// let rs = RsCode::new(8, 18, 16)?;
/// let data: Vec<u16> = (0..16).map(|i| (i * 17) as u16).collect();
/// let mut cw = rs.encode(&data);
/// cw[5] ^= 0xA7; // corrupt one symbol
/// match rs.decode(&cw) {
///     RsDecoded::Corrected { data: d, errors } => {
///         assert_eq!(d, data);
///         assert_eq!(errors, vec![(5, 0xA7)]);
///     }
///     other => panic!("{other:?}"),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RsCode {
    gf: Gf,
    n: usize,
    k: usize,
    t: usize,
    generator: Vec<u16>,
}

impl RsCode {
    /// Builds an RS code with `n` total and `k` data symbols over GF(2^s).
    ///
    /// # Errors
    ///
    /// Fails when the geometry is unsupported: `n − k` must be `2` or `4`
    /// (single- or double-symbol correction), and `n ≤ 2^s − 1`.
    pub fn new(symbol_bits: u32, n: usize, k: usize) -> Result<Self, RsError> {
        let gf = Gf::new(symbol_bits)?;
        let max = gf.size() as usize - 1;
        if n > max {
            return Err(RsError::TooLong { n, max });
        }
        if k >= n || !matches!(n - k, 2 | 4) {
            return Err(RsError::BadGeometry { n, k });
        }
        let t = (n - k) / 2;
        // g(x) = Π_{i=0}^{2t-1} (x − α^i)
        let mut generator = vec![1u16];
        for i in 0..2 * t {
            generator = gf.poly_mul(&generator, &[gf.alpha_pow(i as i64), 1]);
        }
        Ok(Self {
            gf,
            n,
            k,
            t,
            generator,
        })
    }

    /// Total symbols `n`.
    pub fn n_symbols(&self) -> usize {
        self.n
    }

    /// Data symbols `k`.
    pub fn k_symbols(&self) -> usize {
        self.k
    }

    /// Correctable symbol count `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// The underlying field.
    pub fn field(&self) -> &Gf {
        &self.gf
    }

    /// The generator polynomial, low-degree coefficient first.
    pub fn generator(&self) -> &[u16] {
        &self.generator
    }

    /// Encodes `k` data symbols into an `n`-symbol codeword
    /// (parity in positions `0..2t`, data above).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k` or a symbol exceeds the field.
    pub fn encode(&self, data: &[u16]) -> Vec<u16> {
        assert_eq!(data.len(), self.k, "expected {} data symbols", self.k);
        for &d in data {
            assert!(
                (d as u32) < self.gf.size(),
                "symbol {d:#x} outside the field"
            );
        }
        let r = 2 * self.t;
        let mut cw = vec![0u16; self.n];
        cw[r..].copy_from_slice(data);
        // Long division of data·x^r by g(x); the remainder is the parity.
        let mut rem = vec![0u16; r];
        for &d in data.iter().rev() {
            let feedback = self.gf.add(d, rem[r - 1]);
            for j in (1..r).rev() {
                rem[j] = self
                    .gf
                    .add(rem[j - 1], self.gf.mul(feedback, self.generator[j]));
            }
            rem[0] = self.gf.mul(feedback, self.generator[0]);
        }
        cw[..r].copy_from_slice(&rem);
        cw
    }

    /// Computes the `2t` syndromes `S_l = c(α^l)`.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n`.
    pub fn syndromes(&self, cw: &[u16]) -> Vec<u16> {
        assert_eq!(cw.len(), self.n, "expected {} codeword symbols", self.n);
        (0..2 * self.t)
            .map(|l| {
                let mut acc = 0u16;
                for &c in cw.iter().rev() {
                    acc = self
                        .gf
                        .add(self.gf.mul(acc, self.gf.alpha_pow(l as i64)), c);
                }
                acc
            })
            .collect()
    }

    /// Decodes a (possibly corrupted) codeword via the
    /// Peterson–Gorenstein–Zierler procedure.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n`.
    pub fn decode(&self, cw: &[u16]) -> RsDecoded {
        let synd = self.syndromes(cw);
        if synd.iter().all(|&s| s == 0) {
            return RsDecoded::Clean {
                data: cw[2 * self.t..].to_vec(),
            };
        }
        let errors = match self.locate_errors_fixed(&synd) {
            Some(located) => located.corrections().to_vec(),
            None => return RsDecoded::Detected,
        };
        let mut fixed = cw.to_vec();
        for &(pos, val) in &errors {
            fixed[pos] ^= val;
        }
        debug_assert!(self.syndromes(&fixed).iter().all(|&s| s == 0));
        RsDecoded::Corrected {
            data: fixed[2 * self.t..].to_vec(),
            errors,
        }
    }

    fn locate_t1(&self, synd: &[u16]) -> Option<RsLocated> {
        let (s0, s1) = (synd[0], synd[1]);
        if s0 == 0 || s1 == 0 {
            // A true single error e at position j has S0 = e ≠ 0 and
            // S1 = e·α^j ≠ 0; anything else is uncorrectable.
            return None;
        }
        let pos = self.gf.log(self.gf.div(s1, s0)).expect("nonzero ratio") as usize;
        if pos >= self.n {
            return None;
        }
        Some(RsLocated::one(pos, s0))
    }

    /// Erasure decoding: corrects up to `2t` symbol errors at *known*
    /// positions (a code with `2t` parity symbols corrects twice as many
    /// erasures as errors — the permanent-chip-failure mode).
    ///
    /// Solves the Vandermonde system `Σ e_i·α^(l·p_i) = S_l` for the erased
    /// magnitudes ([`Self::erasure_magnitudes`]) and applies them.
    ///
    /// # Panics
    ///
    /// Panics if `cw.len() != n`, positions are out of range or duplicated,
    /// or more than `2t` positions are given.
    ///
    /// # Examples
    ///
    /// A `t = 1` code corrects **one** unknown symbol error but **two**
    /// erased symbols once the failed positions are known — the ChipKill
    /// degraded mode:
    ///
    /// ```
    /// use muse_rs::RsCode;
    ///
    /// # fn main() -> Result<(), muse_rs::RsError> {
    /// let rs = RsCode::new(8, 18, 16)?; // RS(144,128) in symbols, t = 1
    /// let data: Vec<u16> = (0..16).map(|i| (i * 7) as u16).collect();
    /// let mut cw = rs.encode(&data);
    /// cw[4] ^= 0xDE; // two known-failed chips return garbage
    /// cw[11] ^= 0xAD;
    /// assert_eq!(rs.decode_erasures(&cw, &[4, 11]), Some(data.clone()));
    ///
    /// // One erasure leaves a syndrome of margin: an extra unknown error
    /// // fails the residual check and is detected.
    /// let mut cw = rs.encode(&data);
    /// cw[4] ^= 0xDE;
    /// cw[7] ^= 0x01;
    /// assert_eq!(rs.decode_erasures(&cw, &[4]), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn decode_erasures(&self, cw: &[u16], positions: &[usize]) -> Option<Vec<u16>> {
        assert_eq!(cw.len(), self.n, "expected {} codeword symbols", self.n);
        let synd = self.syndromes(cw);
        let magnitudes = self.erasure_magnitudes(&synd, positions)?;
        let mut fixed = cw.to_vec();
        for (&p, &e) in positions.iter().zip(&magnitudes) {
            fixed[p] ^= e;
        }
        debug_assert!(self.syndromes(&fixed).iter().all(|&s| s == 0));
        Some(fixed[2 * self.t..].to_vec())
    }

    /// Syndrome-domain erasure solving: the error magnitudes at the known
    /// positions implied by the `2t` syndromes, or `None` when no
    /// assignment satisfies all of them (errors outside the erased set).
    ///
    /// This is [`Self::decode_erasures`] without the codeword: because the
    /// code is linear, `syndromes(cw ⊕ e) = syndromes(e)`, so Monte-Carlo
    /// loops feed it syndromes accumulated straight from the error pattern
    /// ([`RsMemoryCode::error_syndromes`](crate::RsMemoryCode::error_syndromes))
    /// and never materialize a word. Solves the leading `k × k` Vandermonde
    /// system by Gaussian elimination, then checks the `2t − k` remaining
    /// syndrome equations.
    ///
    /// # Panics
    ///
    /// Panics if `synd.len() != 2t`, positions are out of range or
    /// duplicated, or more than `2t` positions are given.
    pub fn erasure_magnitudes(&self, synd: &[u16], positions: &[usize]) -> Option<Vec<u16>> {
        assert_eq!(synd.len(), 2 * self.t, "expected {} syndromes", 2 * self.t);
        assert!(
            positions.len() <= 2 * self.t,
            "more erasures than parity symbols"
        );
        for (i, &p) in positions.iter().enumerate() {
            assert!(p < self.n, "erasure position {p} out of range");
            assert!(
                !positions[..i].contains(&p),
                "duplicate erasure position {p}"
            );
        }
        let k = positions.len();
        if k == 0 {
            return synd.iter().all(|&s| s == 0).then(Vec::new);
        }
        let gf = &self.gf;
        // Build the augmented matrix [α^(l·p_i) | S_l], l = 0..k.
        let mut mat: Vec<Vec<u16>> = (0..k)
            .map(|l| {
                let mut row: Vec<u16> = positions
                    .iter()
                    .map(|&p| gf.alpha_pow((l * p) as i64))
                    .collect();
                row.push(synd[l]);
                row
            })
            .collect();
        // Gaussian elimination (the Vandermonde system in distinct α^p_i is
        // nonsingular, so a pivot always exists).
        for col in 0..k {
            let pivot = (col..k).find(|&r| mat[r][col] != 0)?;
            mat.swap(col, pivot);
            let inv = gf.inv(mat[col][col]);
            for v in mat[col].iter_mut() {
                *v = gf.mul(*v, inv);
            }
            for r in 0..k {
                if r != col && mat[r][col] != 0 {
                    let factor = mat[r][col];
                    let pivot_row = mat[col].clone();
                    for (cell, &p) in mat[r].iter_mut().zip(&pivot_row) {
                        *cell = gf.add(*cell, gf.mul(factor, p));
                    }
                }
            }
        }
        let magnitudes: Vec<u16> = (0..k).map(|i| mat[i][k]).collect();
        // The solution must also satisfy the remaining syndrome equations.
        for (l, &s) in synd.iter().enumerate().skip(k) {
            let mut acc = s;
            for (&p, &e) in positions.iter().zip(&magnitudes) {
                acc = gf.add(acc, gf.mul(e, gf.alpha_pow((l * p) as i64)));
            }
            if acc != 0 {
                return None;
            }
        }
        Some(magnitudes)
    }

    /// Syndrome-domain error location: the PGZ procedure of
    /// [`Self::decode`] applied directly to a (nonzero) syndrome vector,
    /// returning the `(position, magnitude)` corrections the decoder would
    /// apply, or `None` for a detected-uncorrectable pattern.
    ///
    /// Feed it [`RsMemoryCode::error_syndromes`](crate::RsMemoryCode::error_syndromes)
    /// output to classify trials without a codeword. All-zero syndromes are
    /// the caller's "clean" fast path, not a location problem.
    ///
    /// # Panics
    ///
    /// Panics if `synd.len() != 2t` or all syndromes are zero.
    pub fn locate_errors(&self, synd: &[u16]) -> Option<Vec<(usize, u16)>> {
        self.locate_errors_fixed(synd)
            .map(|l| l.corrections().to_vec())
    }

    /// [`Self::locate_errors`] without the allocation: the corrections come
    /// back in a fixed-capacity [`RsLocated`] — the form the Monte-Carlo
    /// hot loops consume.
    ///
    /// # Panics
    ///
    /// Panics if `synd.len() != 2t` or all syndromes are zero.
    pub fn locate_errors_fixed(&self, synd: &[u16]) -> Option<RsLocated> {
        assert_eq!(synd.len(), 2 * self.t, "expected {} syndromes", 2 * self.t);
        assert!(
            synd.iter().any(|&s| s != 0),
            "all-zero syndromes are a clean word, not a location problem"
        );
        match self.t {
            1 => self.locate_t1(synd),
            2 => self.locate_t2(synd),
            _ => unreachable!("t is validated to 1 or 2"),
        }
    }

    /// Forney-style **combined error-and-erasure** decoding in the syndrome
    /// domain: corrects `e` unknown errors on top of `ν` known-position
    /// erasures whenever `2e + ν ≤ 2t`, returning the full
    /// `(position, xor-magnitude)` correction list (the `ν` erasure fills —
    /// zero magnitudes included — plus any located error), or `None` for a
    /// detected-uncorrectable pattern.
    ///
    /// The procedure multiplies the syndrome polynomial by the erasure
    /// locator `Γ(x) = Π (1 − X_i x)`: in the modified syndromes
    /// `Ξ_j = Σ_k Γ_k·S_{j−k}` (`j ≥ ν`) the erasure contributions cancel,
    /// leaving pure error syndromes of capacity `⌊(2t − ν)/2⌋`. All-zero
    /// `Ξ` reduces to the plain erasure solve
    /// ([`Self::erasure_magnitudes`]); otherwise the surviving geometric
    /// ratio `Ξ_{j+1}/Ξ_j = α^q` locates the single error the `t ≤ 2`
    /// geometries admit, and the full Vandermonde solve (with its residual
    /// syndrome checks) produces the magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if `synd.len() != 2t`, positions are out of range or
    /// duplicated, or more than `2t` positions are given.
    ///
    /// # Examples
    ///
    /// A `t = 2` code correcting a transient error *under* an erased chip —
    /// the degraded-mode read a plain erasure decoder flags as DUE:
    ///
    /// ```
    /// use muse_rs::RsCode;
    ///
    /// # fn main() -> Result<(), muse_rs::RsError> {
    /// let rs = RsCode::new(8, 18, 14)?; // RS(144,112), t = 2
    /// let data: Vec<u16> = (0..14).map(|i| (i * 29) as u16 & 0xFF).collect();
    /// let mut cw = rs.encode(&data);
    /// cw[6] ^= 0x5A;  // the known-failed (erased) chip returns garbage
    /// cw[11] ^= 0x03; // an unknown transient strikes elsewhere
    ///
    /// let synd = rs.syndromes(&cw);
    /// let corrections = rs.decode_combined(&synd, &[6]).expect("2e + ν = 3 ≤ 2t");
    /// for (pos, mag) in corrections {
    ///     cw[pos] ^= mag;
    /// }
    /// assert_eq!(&cw[4..], data.as_slice());
    ///
    /// // One more unknown error exceeds the budget and must flag DUE.
    /// let mut bad = rs.encode(&data);
    /// bad[6] ^= 0x5A;
    /// bad[11] ^= 0x03;
    /// bad[2] ^= 0x47;
    /// assert_eq!(rs.decode_combined(&rs.syndromes(&bad), &[6]), None);
    /// # Ok(())
    /// # }
    /// ```
    pub fn decode_combined(&self, synd: &[u16], erasures: &[usize]) -> Option<Vec<(usize, u16)>> {
        assert_eq!(synd.len(), 2 * self.t, "expected {} syndromes", 2 * self.t);
        if erasures.is_empty() {
            // No erasures: plain error location (clean words included).
            if synd.iter().all(|&s| s == 0) {
                return Some(Vec::new());
            }
            return self.locate_errors(synd);
        }
        let ctx = self.combined_context(erasures);
        self.decode_combined_ctx(synd, &ctx)
            .map(|c| c.corrections().to_vec())
    }

    /// Precomputes every per-erasure-set constant of
    /// [`Self::decode_combined`] — the erasure locator `Γ(x)`, the inverse
    /// of the leading `ν × ν` syndrome Vandermonde, and the residual-check
    /// rows `α^(l·p_i)` — so repeated degraded reads against the same
    /// erased set ([`Self::decode_combined_ctx`]) do none of that work.
    /// `RsClassifier::resolve` builds one of these per degraded context.
    ///
    /// # Panics
    ///
    /// Panics if `erasures` is empty, has positions out of range or
    /// duplicated, or holds more than `2t` positions.
    pub fn combined_context(&self, erasures: &[usize]) -> CombinedContext {
        let nu = erasures.len();
        assert!(nu >= 1, "combined_context needs at least one erasure");
        assert!(nu <= 2 * self.t, "more erasures than parity symbols");
        for (i, &p) in erasures.iter().enumerate() {
            assert!(p < self.n, "erasure position {p} out of range");
            assert!(
                !erasures[..i].contains(&p),
                "duplicate erasure position {p}"
            );
        }
        let gf = &self.gf;
        // Erasure locator Γ(x) = Π (1 + X_i·x), X_i = α^{p_i} (char 2).
        let mut gamma = vec![1u16];
        for &p in erasures {
            gamma = gf.poly_mul(&gamma, &[1, gf.alpha_pow(p as i64)]);
        }
        // Invert the leading ν × ν Vandermonde V[l][i] = α^(l·p_i) by
        // Gauss-Jordan on [V | I] (nonsingular: the α^{p_i} are distinct).
        let mut mat: Vec<Vec<u16>> = (0..nu)
            .map(|l| {
                let mut row: Vec<u16> = erasures
                    .iter()
                    .map(|&p| gf.alpha_pow((l * p) as i64))
                    .collect();
                row.extend((0..nu).map(|i| u16::from(i == l)));
                row
            })
            .collect();
        for col in 0..nu {
            let pivot = (col..nu)
                .find(|&r| mat[r][col] != 0)
                .expect("distinct locators make the Vandermonde nonsingular");
            mat.swap(col, pivot);
            let inv = gf.inv(mat[col][col]);
            for v in mat[col].iter_mut() {
                *v = gf.mul(*v, inv);
            }
            for r in 0..nu {
                if r != col && mat[r][col] != 0 {
                    let factor = mat[r][col];
                    let pivot_row = mat[col].clone();
                    for (cell, &p) in mat[r].iter_mut().zip(&pivot_row) {
                        *cell = gf.add(*cell, gf.mul(factor, p));
                    }
                }
            }
        }
        let vinv: Vec<u16> = (0..nu).flat_map(|r| mat[r][nu..].to_vec()).collect();
        // Residual-check rows for the 2t − ν unconsumed syndromes.
        let check_rows: Vec<u16> = (nu..2 * self.t)
            .flat_map(|l| erasures.iter().map(move |&p| gf.alpha_pow((l * p) as i64)))
            .collect();
        CombinedContext {
            positions: erasures.to_vec(),
            gamma,
            vinv,
            check_rows,
        }
    }

    /// [`Self::decode_combined`] against a precomputed
    /// [`CombinedContext`]: identical classifications, with the erasure
    /// locator, inverse Vandermonde, and residual rows hoisted out of the
    /// per-read path and the correction list returned in fixed-capacity
    /// form (no allocation on the erasure-only fast path).
    ///
    /// # Panics
    ///
    /// Panics if `synd.len() != 2t`.
    pub fn decode_combined_ctx(
        &self,
        synd: &[u16],
        ctx: &CombinedContext,
    ) -> Option<RsCorrections> {
        assert_eq!(synd.len(), 2 * self.t, "expected {} syndromes", 2 * self.t);
        let gf = &self.gf;
        let nu = ctx.positions.len();
        // Modified syndromes Ξ_j (j ≥ ν): erasure contributions vanish.
        let mut modified = [0u16; 4];
        let n_modified = 2 * self.t - nu;
        let mut all_zero = true;
        for (slot, j) in modified[..n_modified].iter_mut().zip(nu..2 * self.t) {
            let mut acc = 0u16;
            for (k, &g) in ctx.gamma.iter().enumerate() {
                acc = gf.add(acc, gf.mul(g, synd[j - k]));
            }
            *slot = acc;
            all_zero &= acc == 0;
        }
        if all_zero {
            // No errors outside the erased set: the precomputed inverse
            // Vandermonde gives the erasure fills directly (Ξ = 0 is
            // equivalent to the residual checks of the plain solve
            // passing, but the hoisted rows re-check the trailing
            // equations all the same).
            let mut out = RsCorrections::default();
            if synd.iter().all(|&s| s == 0) {
                // Clean read under erasure: all-zero fills.
                for (i, &p) in ctx.positions.iter().enumerate() {
                    out.pairs[i] = (p, 0);
                }
                out.len = nu as u8;
                return Some(out);
            }
            for (i, &p) in ctx.positions.iter().enumerate() {
                let mut mag = 0u16;
                for (j, &s) in synd[..nu].iter().enumerate() {
                    mag = gf.add(mag, gf.mul(ctx.vinv[i * nu + j], s));
                }
                out.pairs[i] = (p, mag);
            }
            out.len = nu as u8;
            for (l, &s) in synd.iter().enumerate().skip(nu) {
                let row = &ctx.check_rows[(l - nu) * nu..(l - nu) * nu + nu];
                let mut acc = s;
                for (&r, &(_, e)) in row.iter().zip(&out.pairs[..nu]) {
                    acc = gf.add(acc, gf.mul(e, r));
                }
                if acc != 0 {
                    return None;
                }
            }
            return Some(out);
        }
        if n_modified < 2 {
            // Errors present but no remaining correction capacity.
            return None;
        }
        // t ≤ 2 leaves capacity for exactly one error: a genuine single
        // error at q makes every Ξ_j = C·α^{q·j} nonzero with constant
        // consecutive ratio α^q.
        let modified = &modified[..n_modified];
        if modified.contains(&0) {
            return None;
        }
        let ratio = gf.div(modified[1], modified[0]);
        if modified.windows(2).any(|w| gf.div(w[1], w[0]) != ratio) {
            return None;
        }
        let q = gf.log(ratio)? as usize;
        if q >= self.n || ctx.positions.contains(&q) {
            return None;
        }
        let mut positions: Vec<usize> = ctx.positions.clone();
        positions.push(q);
        // The full Vandermonde solve re-checks any remaining syndrome
        // equations; a zero "error" magnitude is inconsistent with Ξ ≠ 0.
        let mags = self.erasure_magnitudes(synd, &positions)?;
        if *mags.last().expect("ν + 1 ≥ 1 magnitudes") == 0 {
            return None;
        }
        let mut out = RsCorrections::default();
        for (i, (&p, &m)) in positions.iter().zip(&mags).enumerate() {
            out.pairs[i] = (p, m);
        }
        out.len = positions.len() as u8;
        Some(out)
    }

    fn locate_t2(&self, synd: &[u16]) -> Option<RsLocated> {
        let gf = &self.gf;
        let (s0, s1, s2, s3) = (synd[0], synd[1], synd[2], synd[3]);
        // ν = 2: solve [S0 S1; S1 S2]·[σ2 σ1]ᵀ = [S2 S3]ᵀ. The three 2×2
        // minors below (det = S0S2+S1², A = S0S3+S1S2, B = S1S3+S2²) come
        // from four logs plus six doubled-antilog lookups when every
        // syndrome is nonzero — the overwhelmingly common two-error shape —
        // with the general zero-checked products as the rare fallback.
        let (det, a, b) = if s0 != 0 && s1 != 0 && s2 != 0 && s3 != 0 {
            let l0 = gf.log(s0).expect("nonzero");
            let l1 = gf.log(s1).expect("nonzero");
            let l2 = gf.log(s2).expect("nonzero");
            let l3 = gf.log(s3).expect("nonzero");
            (
                gf.exp_sum(l0, l2) ^ gf.exp_sum(l1, l1),
                gf.exp_sum(l0, l3) ^ gf.exp_sum(l1, l2),
                gf.exp_sum(l1, l3) ^ gf.exp_sum(l2, l2),
            )
        } else {
            (
                gf.add(gf.mul(s0, s2), gf.mul(s1, s1)),
                gf.add(gf.mul(s0, s3), gf.mul(s1, s2)),
                gf.add(gf.mul(s1, s3), gf.mul(s2, s2)),
            )
        };
        if det != 0 {
            // Λ(x) = 1 + σ1·x + σ2·x² (σ1 = A/det, σ2 = B/det) must have
            // two distinct in-range roots (the inverse locators
            // X_i⁻¹ = α^{-pos}). Closed form instead of a per-position
            // Chien scan: a degenerate Λ (σ2 = 0: degree < 2; σ1 = 0: a
            // repeated root, since squaring is bijective in char 2) never
            // has two distinct roots, and otherwise the substitution
            // x = (σ1/σ2)·y normalizes it to y² + y = c with
            // c = σ2/σ1² = B·det/A², which the field's precomputed
            // half-trace table solves in O(1) (`Gf::quad_solve`);
            // Tr(c) = 1 means Λ is irreducible. Everything else is
            // exponent arithmetic in the log domain:
            // pos_i = −log((A/B)·y_i) = log B − log A − log y_i.
            if a == 0 || b == 0 {
                return None;
            }
            let la = gf.log(a).expect("nonzero") as i64;
            let lb = gf.log(b).expect("nonzero") as i64;
            let ldet = gf.log(det).expect("nonzero") as i64;
            // Every exponent below is bounded in [0, 4·order) by
            // construction (sums/differences of at most three reduced
            // logs), so two conditional subtractions replace the general
            // modular reduction — no integer division on the hot path.
            let order = gf.size() as i64 - 1;
            let red = |mut e: i64| -> u32 {
                debug_assert!((0..4 * order).contains(&e));
                if e >= 2 * order {
                    e -= 2 * order;
                }
                if e >= order {
                    e -= order;
                }
                e as u32
            };
            let c = gf.exp_at(red(lb + ldet - 2 * la + 2 * order));
            let y = gf.quad_solve(c)?;
            // c ≠ 0 (σ2 ≠ 0), so y ∉ {0, 1} and both roots are nonzero.
            let ly1 = gf.log(y).expect("y ∉ {0, 1}") as i64;
            let ly2 = gf.log(y ^ 1).expect("y ∉ {0, 1}") as i64;
            let p1 = red(lb - la - ly1 + 2 * order) as usize;
            let p2 = red(lb - la - ly2 + 2 * order) as usize;
            if p1 >= self.n || p2 >= self.n {
                // A root beyond the (shortened) length is not a codeword
                // position: detected-uncorrectable.
                return None;
            }
            let (p1, p2) = (p1.min(p2), p1.max(p2));
            let (x1, x2) = (gf.exp_at(p1 as u32), gf.exp_at(p2 as u32));
            // e1 + e2 = S0; e1·X1 + e2·X2 = S1.
            let num = gf.add(s1, gf.mul(s0, x2));
            if num == 0 {
                // e1 = 0: fewer than two genuine errors.
                return None;
            }
            let lnum = gf.log(num).expect("nonzero");
            let lden = gf.log(gf.add(x1, x2)).expect("p1 ≠ p2");
            let e1 = gf.exp_at(lnum + order as u32 - lden);
            let e2 = gf.add(s0, e1);
            if e2 == 0 {
                return None;
            }
            return Some(RsLocated::two(p1, e1, p2, e2));
        }
        // ν = 1: S_l = e·α^{l·pos} for all four syndromes.
        if s0 == 0 {
            return None;
        }
        let ratio = gf.div(s1, s0);
        let pos = gf.log(ratio)? as usize;
        if pos >= self.n {
            return None;
        }
        if gf.mul(s1, ratio) != s2 || gf.mul(s2, ratio) != s3 {
            return None;
        }
        Some(RsLocated::one(pos, s0))
    }
}

/// The precomputed per-erasure-set constants of combined decoding: the
/// erasure locator `Γ(x)`, the inverse of the leading `ν × ν` syndrome
/// Vandermonde, and the residual-check rows. Built once per degraded
/// context by [`RsCode::combined_context`]; consumed per read by
/// [`RsCode::decode_combined_ctx`].
#[derive(Debug, Clone)]
pub struct CombinedContext {
    /// The erased symbol positions, in the order given at construction.
    positions: Vec<usize>,
    /// `Γ(x) = Π (1 + α^{p_i}·x)` coefficients, low-degree-first (ν + 1).
    gamma: Vec<u16>,
    /// Row-major inverse of `V[l][i] = α^(l·p_i)`, `l, i < ν`:
    /// `mags = V⁻¹ · synd[..ν]`.
    vinv: Vec<u16>,
    /// Rows `α^(l·p_i)` for `l = ν..2t`: the trailing syndrome equations
    /// the solved magnitudes must also satisfy.
    check_rows: Vec<u16>,
}

impl CombinedContext {
    /// The erased symbol positions this context was built for.
    pub fn positions(&self) -> &[usize] {
        &self.positions
    }
}

/// The correction list of a combined error-and-erasure decode, in
/// fixed-capacity form (`ν ≤ 2t ≤ 4` erasure fills plus at most one
/// located error — no allocation on the degraded hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RsCorrections {
    pairs: [(usize, u16); 5],
    len: u8,
}

impl RsCorrections {
    /// The `(position, xor-magnitude)` corrections (erasure fills — zero
    /// magnitudes included — plus any located error).
    pub fn corrections(&self) -> &[(usize, u16)] {
        &self.pairs[..self.len as usize]
    }
}

/// The corrections of a syndrome-domain error location, in fixed-capacity
/// form (no allocation — the Monte-Carlo hot-loop variant of the
/// `Vec`-returning [`RsCode::locate_errors`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsLocated {
    pairs: [(usize, u16); 2],
    len: u8,
}

impl RsLocated {
    fn one(pos: usize, val: u16) -> Self {
        Self {
            pairs: [(pos, val), (0, 0)],
            len: 1,
        }
    }

    fn two(p1: usize, v1: u16, p2: usize, v2: u16) -> Self {
        Self {
            pairs: [(p1, v1), (p2, v2)],
            len: 2,
        }
    }

    /// The located `(position, magnitude)` corrections.
    pub fn corrections(&self) -> &[(usize, u16)] {
        &self.pairs[..self.len as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs_18_16() -> RsCode {
        RsCode::new(8, 18, 16).unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(matches!(
            RsCode::new(4, 20, 18),
            Err(RsError::TooLong { n: 20, max: 15 })
        ));
        assert!(matches!(
            RsCode::new(8, 18, 15),
            Err(RsError::BadGeometry { .. })
        ));
        assert!(matches!(
            RsCode::new(8, 18, 18),
            Err(RsError::BadGeometry { .. })
        ));
        assert!(RsCode::new(8, 18, 14).is_ok()); // t = 2
    }

    #[test]
    fn generator_has_expected_roots() {
        let rs = rs_18_16();
        let gf = rs.field();
        for i in 0..2 {
            assert_eq!(gf.poly_eval(rs.generator(), gf.alpha_pow(i)), 0);
        }
        assert_eq!(rs.generator().len(), 3);
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = rs_18_16();
        let data: Vec<u16> = (0..16).map(|i| (i * 13 + 7) as u16 & 0xFF).collect();
        let cw = rs.encode(&data);
        assert_eq!(&cw[2..], data.as_slice());
        assert!(rs.syndromes(&cw).iter().all(|&s| s == 0));
    }

    #[test]
    fn clean_decode() {
        let rs = rs_18_16();
        let data = vec![0xAB; 16];
        match rs.decode(&rs.encode(&data)) {
            RsDecoded::Clean { data: d } => assert_eq!(d, data),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corrects_every_single_symbol_error() {
        let rs = rs_18_16();
        let data: Vec<u16> = (0..16).map(|i| (i * i) as u16 & 0xFF).collect();
        let cw = rs.encode(&data);
        for pos in 0..18 {
            for val in [1u16, 0x80, 0xFF, 0x5A] {
                let mut bad = cw.clone();
                bad[pos] ^= val;
                match rs.decode(&bad) {
                    RsDecoded::Corrected { data: d, errors } => {
                        assert_eq!(d, data, "pos {pos} val {val:#x}");
                        assert_eq!(errors, vec![(pos, val)]);
                    }
                    other => panic!("pos {pos} val {val:#x}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn t2_corrects_double_symbol_errors() {
        let rs = RsCode::new(8, 18, 14).unwrap();
        let data: Vec<u16> = (0..14).map(|i| (0xE0 + i) as u16).collect();
        let cw = rs.encode(&data);
        for (a, b) in [(0usize, 1usize), (3, 17), (5, 9), (16, 17)] {
            let mut bad = cw.clone();
            bad[a] ^= 0x3C;
            bad[b] ^= 0xC3;
            match rs.decode(&bad) {
                RsDecoded::Corrected {
                    data: d,
                    mut errors,
                } => {
                    assert_eq!(d, data, "({a},{b})");
                    errors.sort_unstable();
                    assert_eq!(errors, vec![(a, 0x3C), (b, 0xC3)]);
                }
                other => panic!("({a},{b}): {other:?}"),
            }
        }
    }

    #[test]
    fn t2_still_corrects_single_errors() {
        let rs = RsCode::new(8, 18, 14).unwrap();
        let data = vec![0x11; 14];
        let cw = rs.encode(&data);
        let mut bad = cw.clone();
        bad[7] ^= 0x42;
        match rs.decode(&bad) {
            RsDecoded::Corrected { data: d, errors } => {
                assert_eq!(d, data);
                assert_eq!(errors, vec![(7, 0x42)]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shortened_code_rejects_out_of_range_locations() {
        // A heavily shortened code: many locator values point beyond n and
        // must be flagged Detected rather than miscorrected.
        let rs = RsCode::new(8, 10, 8).unwrap();
        let data = vec![0x77; 8];
        let cw = rs.encode(&data);
        let mut detected = 0;
        let mut trials = 0;
        for a in 0..10usize {
            for b in (a + 1)..10 {
                let mut bad = cw.clone();
                bad[a] ^= 0x0F;
                bad[b] ^= 0xF0;
                trials += 1;
                match rs.decode(&bad) {
                    RsDecoded::Clean { .. } => panic!("double error read clean"),
                    RsDecoded::Detected => detected += 1,
                    RsDecoded::Corrected { data: d, .. } => assert_ne!(d, data),
                }
            }
        }
        assert!(trials > 0 && detected > 0);
    }

    #[test]
    fn gf16_chipkill_geometry() {
        // RS over GF(16) is limited to 15 symbols: exactly why 4-bit-symbol
        // RS cannot cover a 144-bit (36-nibble) channel (Section VII-A).
        assert!(matches!(
            RsCode::new(4, 36, 34),
            Err(RsError::TooLong { n: 36, max: 15 })
        ));
        let rs = RsCode::new(4, 15, 13).unwrap();
        let data: Vec<u16> = (0..13).map(|i| i as u16 & 0xF).collect();
        let cw = rs.encode(&data);
        let mut bad = cw.clone();
        bad[14] ^= 0x9;
        assert_eq!(rs.decode(&bad).data(), Some(data.as_slice()));
    }

    #[test]
    fn erasure_decoding_doubles_correction_power() {
        // A t=1 code (2 parity symbols) corrects TWO erased symbols.
        let rs = rs_18_16();
        let data: Vec<u16> = (0..16).map(|i| (i * 31 + 5) as u16 & 0xFF).collect();
        let cw = rs.encode(&data);
        for (a, b) in [(0usize, 1usize), (2, 17), (9, 10), (16, 17)] {
            let mut bad = cw.clone();
            bad[a] ^= 0xDE;
            bad[b] ^= 0xAD;
            assert_eq!(
                rs.decode_erasures(&bad, &[a, b]),
                Some(data.clone()),
                "({a},{b})"
            );
        }
        // Also with only one of the two actually corrupted.
        let mut bad = cw.clone();
        bad[7] ^= 0x42;
        assert_eq!(rs.decode_erasures(&bad, &[7, 8]), Some(data.clone()));
        // And with none corrupted.
        assert_eq!(rs.decode_erasures(&cw, &[3, 4]), Some(data.clone()));
        assert_eq!(rs.decode_erasures(&cw, &[]), Some(data));
    }

    #[test]
    fn erasure_decoding_rejects_extra_errors() {
        // An error OUTSIDE the erased set leaves residual syndromes... for a
        // t=1 code both syndromes are consumed by two erasures, so instead
        // test with a t=2 code: 4 syndromes, 2 erasures, 1 extra error.
        let rs = RsCode::new(8, 18, 14).unwrap();
        let data = vec![0x21u16; 14];
        let cw = rs.encode(&data);
        let mut bad = cw.clone();
        bad[3] ^= 0x11;
        bad[4] ^= 0x22;
        bad[10] ^= 0x33; // not in the erased set
        assert_eq!(rs.decode_erasures(&bad, &[3, 4]), None);
    }

    #[test]
    fn erasure_magnitudes_match_wide_erasure_decode() {
        // Syndrome-domain solving == codeword-domain decode_erasures, for
        // t = 1 and t = 2, random erasure sets and extra errors.
        let mut state = 0x0E2A_5EEDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (n, k_data) in [(18usize, 16usize), (18, 14), (10, 8)] {
            let rs = RsCode::new(8, n, k_data).unwrap();
            let t2 = 2 * rs.t();
            let data: Vec<u16> = (0..k_data).map(|_| (next() & 0xFF) as u16).collect();
            let cw = rs.encode(&data);
            for trial in 0..300u64 {
                // Erase 0..=2t distinct positions, inject 0..3 errors
                // anywhere (inside or outside the erased set).
                let n_erase = (next() % (t2 as u64 + 1)) as usize;
                let mut positions: Vec<usize> = Vec::new();
                while positions.len() < n_erase {
                    let p = (next() % n as u64) as usize;
                    if !positions.contains(&p) {
                        positions.push(p);
                    }
                }
                let mut bad = cw.clone();
                for _ in 0..next() % 3 {
                    bad[(next() % n as u64) as usize] ^= (next() & 0xFF) as u16;
                }
                let wide = rs.decode_erasures(&bad, &positions);
                let synd = rs.syndromes(&bad);
                match (rs.erasure_magnitudes(&synd, &positions), &wide) {
                    (None, None) => {}
                    (Some(mags), Some(d)) => {
                        let mut fixed = bad.clone();
                        for (&p, &e) in positions.iter().zip(&mags) {
                            fixed[p] ^= e;
                        }
                        assert_eq!(&fixed[t2..], d.as_slice(), "n={n} trial {trial}");
                    }
                    (fast, wide) => {
                        panic!("n={n} trial {trial}: fast {fast:?} vs wide {wide:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn locate_errors_matches_decode() {
        for (n, k_data) in [(18usize, 16usize), (18, 14)] {
            let rs = RsCode::new(8, n, k_data).unwrap();
            let data: Vec<u16> = (0..k_data).map(|i| (i * 11 + 3) as u16 & 0xFF).collect();
            let cw = rs.encode(&data);
            let mut state = 0x10CAu64;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 16
            };
            for trial in 0..300u64 {
                let k_err = 1 + (trial % 3) as usize;
                let mut bad = cw.clone();
                for _ in 0..k_err {
                    bad[(next() % n as u64) as usize] ^= (next() & 0xFF) as u16;
                }
                let synd = rs.syndromes(&bad);
                if synd.iter().all(|&s| s == 0) {
                    continue; // errors cancelled: a clean word
                }
                match (rs.locate_errors(&synd), rs.decode(&bad)) {
                    (None, RsDecoded::Detected) => {}
                    (Some(located), RsDecoded::Corrected { mut errors, .. }) => {
                        let mut located = located;
                        located.sort_unstable();
                        errors.sort_unstable();
                        assert_eq!(located, errors, "n={n} trial {trial}");
                    }
                    (fast, wide) => panic!("n={n} trial {trial}: {fast:?} vs {wide:?}"),
                }
            }
        }
    }

    #[test]
    fn full_erasure_budget_has_no_detection_margin() {
        // k = 2t erasures consume every syndrome: the solve always succeeds,
        // so an extra unknown error silently lands in the recovered data.
        let rs = rs_18_16();
        let data = vec![0x3Cu16; 16];
        let mut bad = rs.encode(&data);
        bad[2] ^= 0x55; // erased pair
        bad[3] ^= 0xAA;
        bad[9] ^= 0x01; // the extra, unknown error
        let recovered = rs
            .decode_erasures(&bad, &[2, 3])
            .expect("no residual syndromes remain to reject it");
        assert_ne!(recovered, data, "the extra error is silent corruption");
    }

    #[test]
    #[should_panic(expected = "more erasures than parity")]
    fn too_many_erasures_panics() {
        let rs = rs_18_16();
        let cw = rs.encode(&[0u16; 16]);
        let _ = rs.decode_erasures(&cw, &[0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate erasure")]
    fn duplicate_erasures_panic() {
        let rs = rs_18_16();
        let cw = rs.encode(&[0u16; 16]);
        let _ = rs.decode_erasures(&cw, &[5, 5]);
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn oversized_symbol_panics() {
        let rs = RsCode::new(4, 15, 13).unwrap();
        let _ = rs.encode(&[0x1F; 13]);
    }
}
