//! The Reed-Solomon implementation of the unified syndrome-domain
//! classification backend (`muse_core::Classifier`).
//!
//! Word reads classify entirely in the error-value domain: device strikes
//! fold into per-symbol error values, [`RsMemoryCode::error_syndromes`]
//! accumulates the `2t` GF syndromes from the `α^(l·p)` table, and the
//! decision runs on [`RsCode::locate_errors`](crate::RsCode::locate_errors)
//! (healthy) or the Forney-style combined
//! [`RsCode::decode_combined`](crate::RsCode::decode_combined) (degraded:
//! `ν` erasures + `e` errors, `2e + ν ≤ 2t`). No codeword — and no
//! dead-chip content — is ever materialized: the erasure solve compensates
//! any value a dead chip emits, so the simulator does not sample it.

use muse_core::{Classifier, Entropy, Strike, WordRead};

use crate::{CombinedContext, RsMemoryCode};

/// The resolved RS decode context for one erased-device set.
#[derive(Debug, Clone)]
pub enum RsContext {
    /// Empty erased set: plain PGZ error location.
    Healthy,
    /// Degraded operation: the hoisted combined-decode constants for the
    /// erased RS symbol set (erasure locator `Γ(x)`, inverse syndrome
    /// Vandermonde, residual rows — see [`CombinedContext`]), so every
    /// degraded read decodes without re-deriving them.
    Degraded(CombinedContext),
}

/// Error-domain classification backend for a Reed-Solomon fleet code.
///
/// Fleet geometries are restricted to the clean case: whole symbols per
/// channel (no shortened top) and devices nested inside symbols, which the
/// constructor asserts.
///
/// # Examples
///
/// ```
/// use muse_core::{Classifier, Entropy, Strike, WordRead};
/// use muse_rs::{RsClassifier, RsMemoryCode};
///
/// struct Splitmix(u64);
/// impl Entropy for Splitmix {
///     fn next_u64(&mut self) -> u64 {
///         self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
///         let mut z = self.0;
///         z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
///         z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
///         z ^ (z >> 31)
///     }
/// }
///
/// # fn main() -> Result<(), muse_rs::RsError> {
/// let code = RsMemoryCode::new(8, 144, 2)?; // RS(144,112), t = 2
/// let mut backend = RsClassifier::new(&code, 4);
/// let mut entropy = Splitmix(1);
///
/// // Device 9 is dead (erased); a transient hits device 20: combined
/// // decoding corrects the transient UNDER the erasure (2e + ν = 3 ≤ 4).
/// let ctx = backend.resolve(&[9]).expect("within erasure capacity");
/// let read = backend.classify(&ctx, &[(20, Strike::Xor(0xB))], &mut entropy);
/// assert_eq!(read, WordRead::Correct);
/// # Ok(())
/// # }
/// ```
pub struct RsClassifier<'a> {
    code: &'a RsMemoryCode,
    device_bits: u32,
    devices_per_symbol: u32,
    /// `2t` — parity symbols / syndrome count.
    parity: usize,
    n_symbols: usize,
}

impl<'a> RsClassifier<'a> {
    /// Builds the backend, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics on geometries with a shortened top symbol or devices
    /// straddling symbols.
    pub fn new(code: &'a RsMemoryCode, device_bits: u32) -> Self {
        assert_eq!(
            code.top_symbol_bits(),
            code.symbol_bits(),
            "fleet RS codes use whole symbols (no shortened top)"
        );
        assert_eq!(
            code.symbol_bits() % device_bits,
            0,
            "devices must nest inside RS symbols"
        );
        Self {
            code,
            device_bits,
            devices_per_symbol: code.symbol_bits() / device_bits,
            parity: 2 * code.inner().t(),
            n_symbols: code.n_symbols(),
        }
    }

    /// The RS symbol a device's bits live in.
    #[inline]
    pub fn symbol_of_device(&self, dev: u16) -> usize {
        (dev as u32 / self.devices_per_symbol) as usize
    }
}

impl Classifier for RsClassifier<'_> {
    type Context = RsContext;

    fn devices(&self) -> usize {
        self.n_symbols * self.devices_per_symbol as usize
    }

    fn device_width(&self, _dev: u16) -> u32 {
        self.device_bits
    }

    fn resolve(&self, erased: &[u16]) -> Option<RsContext> {
        if erased.is_empty() {
            return Some(RsContext::Healthy);
        }
        let mut syms: Vec<usize> = erased.iter().map(|&d| self.symbol_of_device(d)).collect();
        syms.sort_unstable();
        syms.dedup();
        (syms.len() <= self.parity)
            .then(|| RsContext::Degraded(self.code.inner().combined_context(&syms)))
    }

    /// Classifies one RS word read. Strikes on erased symbols are
    /// permitted — the erasure solve absorbs them (the whole symbol is
    /// reconstructed).
    fn classify<E: Entropy>(
        &mut self,
        ctx: &RsContext,
        strikes: &[(u16, Strike)],
        entropy: &mut E,
    ) -> WordRead {
        // Fold device strikes into per-symbol error values.
        let mut errors = [(0usize, 0u16); 16];
        let mut n = 0usize;
        for &(dev, s) in strikes {
            let value = match s {
                Strike::Xor(p) => p,
                // Asymmetric discharge: the struck cell stores 1 with
                // probability 1/2 under uniform contents.
                Strike::AsymBit(bit) => {
                    if entropy.coin(0.5) {
                        1 << bit
                    } else {
                        0
                    }
                }
            };
            if value == 0 {
                continue;
            }
            let sym = self.symbol_of_device(dev);
            let shifted = value << ((dev as u32 % self.devices_per_symbol) * self.device_bits);
            match errors[..n].iter_mut().find(|e| e.0 == sym) {
                Some(e) => e.1 ^= shifted,
                None => {
                    errors[n] = (sym, shifted);
                    n += 1;
                }
            }
        }
        let errors = &errors[..n];
        let data_start = self.parity;
        let code = self.code;

        match ctx {
            RsContext::Healthy => {
                if errors.iter().all(|&(_, v)| v == 0) {
                    return WordRead::Correct;
                }
                let synd = code.error_syndromes(errors);
                let synd = &synd[..self.parity];
                if synd.iter().all(|&s| s == 0) {
                    // Aliased to a valid codeword: silent iff data symbols
                    // moved.
                    return if errors.iter().any(|&(p, v)| p >= data_start && v != 0) {
                        WordRead::Sdc
                    } else {
                        WordRead::Correct
                    };
                }
                match code.inner().locate_errors_fixed(synd) {
                    None => WordRead::Due,
                    Some(located) => {
                        // Residual after correction: injected ⊕ located, per
                        // position; data reads right iff it vanishes on
                        // every data symbol.
                        let residual_clean = |pos: usize| {
                            let injected = errors
                                .iter()
                                .find(|&&(p, _)| p == pos)
                                .map_or(0, |&(_, v)| v);
                            let corrected = located
                                .corrections()
                                .iter()
                                .find(|&&(p, _)| p == pos)
                                .map_or(0, |&(_, v)| v);
                            injected ^ corrected == 0
                        };
                        let touched = errors
                            .iter()
                            .map(|&(p, _)| p)
                            .chain(located.corrections().iter().map(|&(p, _)| p));
                        if touched.filter(|&p| p >= data_start).all(residual_clean) {
                            WordRead::Correct
                        } else {
                            WordRead::Sdc
                        }
                    }
                }
            }
            RsContext::Degraded(combined) => {
                if errors.is_empty() {
                    // All-zero syndromes: the erasure fills are all zero
                    // and every data symbol reads back clean.
                    return WordRead::Correct;
                }
                let synd = code.error_syndromes(errors);
                match code
                    .inner()
                    .decode_combined_ctx(&synd[..self.parity], combined)
                {
                    None => WordRead::Due,
                    Some(located) => {
                        let corrections = located.corrections();
                        // Residual: injected errors minus the applied
                        // corrections (erasure fills + any located error).
                        let clean = |pos: usize| {
                            let injected = errors
                                .iter()
                                .find(|&&(p, _)| p == pos)
                                .map_or(0, |&(_, v)| v);
                            let corrected = corrections
                                .iter()
                                .find(|&&(p, _)| p == pos)
                                .map_or(0, |&(_, v)| v);
                            injected ^ corrected == 0
                        };
                        let touched = errors
                            .iter()
                            .map(|&(p, _)| p)
                            .chain(corrections.iter().map(|&(p, _)| p));
                        if touched.filter(|&p| p >= data_start).all(clean) {
                            WordRead::Correct
                        } else {
                            WordRead::Sdc
                        }
                    }
                }
            }
        }
    }
}
