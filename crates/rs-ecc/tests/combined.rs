//! Property tests for Forney-style combined error-and-erasure decoding:
//! random `(e, ν)` sweeps with `2e + ν ≤ 2t` for both supported `t` values,
//! boundary cases (`2e + ν = 2t`), beyond-capacity behaviour, and a
//! cross-check against a brute-force wide-decoder oracle.

use muse_rs::RsCode;

/// Small deterministic xorshift for reproducible sweeps.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Draws `k` distinct positions in `[0, n)`, avoiding `taken`.
fn distinct(rng: &mut Xs, n: usize, k: usize, taken: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    while out.len() < k {
        let p = (rng.next() % n as u64) as usize;
        if !taken.contains(&p) && !out.contains(&p) {
            out.push(p);
        }
    }
    out
}

/// Brute-force combined-decode oracle built on the (independently
/// property-tested) codeword-domain erasure decoder: try the erasure-only
/// explanation first, then every single-error position within the remaining
/// capacity, committing only to a unique consistent explanation.
fn oracle(rs: &RsCode, corrupted: &[u16], erasures: &[usize]) -> Option<Vec<u16>> {
    if let Some(data) = rs.decode_erasures(corrupted, erasures) {
        return Some(data);
    }
    let e_max = (2 * rs.t() - erasures.len()) / 2;
    if e_max == 0 {
        return None;
    }
    let synd = rs.syndromes(corrupted);
    let mut found: Option<Vec<u16>> = None;
    for q in 0..rs.n_symbols() {
        if erasures.contains(&q) {
            continue;
        }
        let mut positions = erasures.to_vec();
        positions.push(q);
        let Some(mags) = rs.erasure_magnitudes(&synd, &positions) else {
            continue;
        };
        if *mags.last().expect("nonempty") == 0 {
            continue; // a zero-magnitude "error" is the erasure-only case
        }
        if found.is_some() {
            return None; // ambiguous explanation
        }
        let mut fixed = corrupted.to_vec();
        for (&p, &m) in positions.iter().zip(&mags) {
            fixed[p] ^= m;
        }
        found = Some(fixed[2 * rs.t()..].to_vec());
    }
    found
}

fn codes() -> Vec<RsCode> {
    vec![
        RsCode::new(8, 18, 16).unwrap(), // t = 1
        RsCode::new(8, 18, 14).unwrap(), // t = 2
    ]
}

#[test]
fn recovers_every_in_capacity_error_erasure_mix() {
    // Sweep every (e, ν) with 2e + ν ≤ 2t — including the 2e + ν = 2t
    // boundary — over random codewords, erasure garbage, and error values:
    // the corrections must restore the exact codeword.
    for rs in codes() {
        let t2 = 2 * rs.t();
        let n = rs.n_symbols();
        let mut rng = Xs(0xC0DE_C0DE ^ t2 as u64);
        for nu in 0..=t2 {
            let e_max = (t2 - nu) / 2;
            for e in 0..=e_max {
                for trial in 0..150u32 {
                    let data: Vec<u16> = (0..rs.k_symbols())
                        .map(|_| (rng.next() & 0xFF) as u16)
                        .collect();
                    let cw = rs.encode(&data);
                    let erasures = distinct(&mut rng, n, nu, &[]);
                    let error_pos = distinct(&mut rng, n, e, &erasures);
                    let mut bad = cw.clone();
                    for &p in &erasures {
                        bad[p] ^= (rng.next() & 0xFF) as u16; // may be zero
                    }
                    let mut injected_errors = Vec::new();
                    for &p in &error_pos {
                        let v = 1 + (rng.next() % 255) as u16;
                        bad[p] ^= v;
                        injected_errors.push((p, v));
                    }
                    let synd = rs.syndromes(&bad);
                    let corrections = rs.decode_combined(&synd, &erasures).unwrap_or_else(|| {
                        panic!("t={} ν={nu} e={e} trial {trial}: in-capacity DUE", rs.t())
                    });
                    let mut fixed = bad.clone();
                    for &(p, m) in &corrections {
                        fixed[p] ^= m;
                    }
                    assert_eq!(
                        fixed,
                        cw,
                        "t={} ν={nu} e={e} trial {trial}: wrong recovery",
                        rs.t()
                    );
                    // The located error (if any) is exactly the injected one.
                    for &(p, v) in &injected_errors {
                        assert!(
                            corrections.contains(&(p, v)),
                            "t={} ν={nu} e={e} trial {trial}: error at {p} missed",
                            rs.t()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn beyond_capacity_never_silently_recovers() {
    // 2e + ν = 2t + 1 (one error too many): the decoder may flag a DUE or
    // commit to a wrong explanation, but it can never reproduce the true
    // data — two distinct codewords within the combined budget would
    // violate the minimum distance. Most patterns must flag DUE.
    for rs in codes() {
        let t2 = 2 * rs.t();
        let n = rs.n_symbols();
        let mut rng = Xs(0xBAD0_5EED ^ t2 as u64);
        let mut dues = 0u32;
        let mut trials = 0u32;
        for nu in 0..t2 {
            let e = (t2 - nu) / 2 + 1; // one beyond the (e, ν) budget
            if 2 * e + nu != t2 + 1 && 2 * e + nu != t2 + 2 {
                continue;
            }
            for _ in 0..200u32 {
                let data: Vec<u16> = (0..rs.k_symbols())
                    .map(|_| (rng.next() & 0xFF) as u16)
                    .collect();
                let cw = rs.encode(&data);
                let erasures = distinct(&mut rng, n, nu, &[]);
                let error_pos = distinct(&mut rng, n, e, &erasures);
                let mut bad = cw.clone();
                for &p in &erasures {
                    bad[p] ^= (rng.next() & 0xFF) as u16;
                }
                for &p in &error_pos {
                    bad[p] ^= 1 + (rng.next() % 255) as u16;
                }
                trials += 1;
                match rs.decode_combined(&rs.syndromes(&bad), &erasures) {
                    None => dues += 1,
                    Some(corrections) => {
                        let mut fixed = bad.clone();
                        for &(p, m) in &corrections {
                            fixed[p] ^= m;
                        }
                        assert_ne!(
                            &fixed[t2..],
                            &cw[t2..],
                            "t={} ν={nu} e={e}: beyond-capacity pattern read back clean",
                            rs.t()
                        );
                    }
                }
            }
        }
        assert!(
            dues * 2 > trials,
            "t={}: most beyond-capacity patterns flag DUE ({dues}/{trials})",
            rs.t()
        );
    }
}

#[test]
fn beyond_capacity_constructed_cases_flag_due() {
    // Specific boundary patterns that must be detected, not miscorrected.
    // t = 1, one erasure: budget 2e + ν ≤ 2 leaves e = 0; any extra error
    // must flag DUE (this is the degraded ChipKill read the lifetime
    // simulator classifies).
    let rs = RsCode::new(8, 18, 16).unwrap();
    let data = vec![0x21u16; 16];
    let mut bad = rs.encode(&data);
    bad[3] ^= 0x11; // the erased chip
    bad[9] ^= 0x47; // the extra unknown error
    assert_eq!(rs.decode_combined(&rs.syndromes(&bad), &[3]), None);

    // t = 2, two erasures + two extra errors: 2e + ν = 6 > 4.
    let rs = RsCode::new(8, 18, 14).unwrap();
    let data = vec![0x84u16; 14];
    let mut bad = rs.encode(&data);
    bad[2] ^= 0x55;
    bad[5] ^= 0xAA;
    bad[10] ^= 0x13;
    bad[16] ^= 0x77;
    assert_eq!(rs.decode_combined(&rs.syndromes(&bad), &[2, 5]), None);
}

#[test]
fn matches_brute_force_oracle_on_arbitrary_corruption() {
    // The modified-syndrome procedure is equivalent to brute-force "unique
    // consistent explanation" search for EVERY degraded input, not just
    // in-capacity ones: cross-check on fully random corruption (0..4
    // errors, 1..2t erasures — ν ≥ 1 leaves capacity for at most one
    // error, which the position-enumeration oracle covers; ν = 0 is plain
    // `locate_errors`, cross-checked in the rs module's own tests).
    for rs in codes() {
        let t2 = 2 * rs.t();
        let n = rs.n_symbols();
        let mut rng = Xs(0x04AC_1E00 ^ t2 as u64);
        for trial in 0..2_000u32 {
            let data: Vec<u16> = (0..rs.k_symbols())
                .map(|_| (rng.next() & 0xFF) as u16)
                .collect();
            let cw = rs.encode(&data);
            let nu = 1 + (rng.next() % t2 as u64) as usize;
            let erasures = distinct(&mut rng, n, nu, &[]);
            let mut bad = cw.clone();
            for &p in &erasures {
                bad[p] ^= (rng.next() & 0xFF) as u16;
            }
            for _ in 0..rng.next() % 4 {
                bad[(rng.next() % n as u64) as usize] ^= (rng.next() & 0xFF) as u16;
            }
            let synd = rs.syndromes(&bad);
            let fast = rs.decode_combined(&synd, &erasures).map(|corrections| {
                let mut fixed = bad.clone();
                for &(p, m) in &corrections {
                    fixed[p] ^= m;
                }
                fixed[t2..].to_vec()
            });
            let wide = oracle(&rs, &bad, &erasures);
            assert_eq!(
                fast,
                wide,
                "t={} trial {trial}: erasures {erasures:?}",
                rs.t()
            );
        }
    }
}
