//! Property tests for the Reed-Solomon codes: roundtrips, correction
//! guarantees within `t`, erasure recovery, and detection invariants.

use muse_rs::{RsCode, RsDecoded, RsMemoryCode, RsMemoryDecoded};
use muse_wideint::U320;
use proptest::prelude::*;

fn rs_geometry() -> impl Strategy<Value = (u32, usize, usize)> {
    // (symbol bits, n, t): shortened geometries across field widths.
    prop_oneof![
        Just((8u32, 18usize, 1usize)),
        Just((8, 10, 1)),
        Just((8, 18, 2)),
        Just((6, 24, 1)),
        Just((5, 29, 1)),
        Just((4, 15, 1)),
    ]
}

proptest! {
    #[test]
    fn roundtrip((s, n, t) in rs_geometry(), seed: u64) {
        let rs = RsCode::new(s, n, n - 2 * t).expect("geometry");
        let mask = (1u16 << s) - 1;
        let data: Vec<u16> = (0..rs.k_symbols())
            .map(|i| (seed.rotate_left(i as u32) as u16) & mask)
            .collect();
        let cw = rs.encode(&data);
        prop_assert!(rs.syndromes(&cw).iter().all(|&x| x == 0));
        let decoded = rs.decode(&cw);
        prop_assert_eq!(decoded.data(), Some(data.as_slice()));
    }

    #[test]
    fn corrects_within_t((s, n, t) in rs_geometry(), seed: u64, pos_seed: usize, val_seed: u16) {
        let rs = RsCode::new(s, n, n - 2 * t).expect("geometry");
        let mask = (1u16 << s) - 1;
        let data: Vec<u16> = (0..rs.k_symbols())
            .map(|i| (seed.wrapping_mul(i as u64 + 3) as u16) & mask)
            .collect();
        let mut cw = rs.encode(&data);
        // t distinct corruptions.
        let mut positions = Vec::new();
        for i in 0..t {
            let mut p = (pos_seed + i * 7) % n;
            while positions.contains(&p) {
                p = (p + 1) % n;
            }
            positions.push(p);
            let v = ((val_seed >> i) & mask).max(1);
            cw[p] ^= v;
        }
        match rs.decode(&cw) {
            RsDecoded::Corrected { data: d, errors } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(errors.len(), positions.len());
            }
            RsDecoded::Clean { .. } => prop_assert!(false, "corruption read as clean"),
            RsDecoded::Detected => prop_assert!(false, "within-t error must correct"),
        }
    }

    #[test]
    fn erasures_recover_up_to_2t((s, n, t) in rs_geometry(), seed: u64, pos_seed: usize) {
        let rs = RsCode::new(s, n, n - 2 * t).expect("geometry");
        let mask = (1u16 << s) - 1;
        let data: Vec<u16> = (0..rs.k_symbols())
            .map(|i| (seed.wrapping_add(i as u64 * 11) as u16) & mask)
            .collect();
        let mut cw = rs.encode(&data);
        let mut positions = Vec::new();
        for i in 0..2 * t {
            let mut p = (pos_seed + i * 5) % n;
            while positions.contains(&p) {
                p = (p + 1) % n;
            }
            positions.push(p);
            cw[p] = (cw[p] ^ (0x15 + i as u16)) & mask; // arbitrary garbage
        }
        prop_assert_eq!(rs.decode_erasures(&cw, &positions), Some(data));
    }

    #[test]
    fn memory_code_roundtrip_and_chipkill(seed: u64, sym_seed: usize, val_seed in 1u64..256) {
        let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
        let payload = U320::from_limbs([seed, seed.rotate_left(17), 0, 0, 0]) & U320::mask(128);
        let cw = code.encode(&payload);
        prop_assert_eq!(code.payload_of(&cw), payload);
        // Any single full-symbol corruption corrects.
        let sym = (sym_seed % 18) as u32;
        let corrupted = cw ^ (U320::from(val_seed) << (8 * sym));
        match code.decode(&corrupted) {
            RsMemoryDecoded::Corrected { payload: p, .. } => prop_assert_eq!(p, payload),
            other => prop_assert!(false, "{:?}", other),
        }
    }

    #[test]
    fn double_symbol_never_clean(seed: u64, a in 0usize..18, b in 0usize..18) {
        prop_assume!(a != b);
        let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
        let payload = U320::from(seed) & U320::mask(128);
        let cw = code.encode(&payload);
        let corrupted = cw
            ^ (U320::from(0x5Au64) << (8 * a as u32))
            ^ (U320::from(0xA5u64) << (8 * b as u32));
        match code.decode(&corrupted) {
            RsMemoryDecoded::Clean { .. } => prop_assert!(false, "double error read clean"),
            RsMemoryDecoded::Corrected { payload: p, .. } => prop_assert_ne!(p, payload),
            RsMemoryDecoded::Detected => {}
        }
    }
}
