//! Property tests: field axioms over randomly drawn elements for every
//! supported width, and polynomial-algebra consistency.

use muse_gf::Gf;
use proptest::prelude::*;

fn field_and_elems(max_elems: usize) -> impl Strategy<Value = (Gf, Vec<u16>)> {
    (2u32..=12).prop_flat_map(move |w| {
        let gf = Gf::new(w).expect("supported width");
        let size = gf.size() as u16;
        (
            Just(gf),
            prop::collection::vec(0..size, 3..max_elems.max(4)),
        )
    })
}

proptest! {
    #[test]
    fn axioms_hold_for_random_elements((gf, elems) in field_and_elems(8)) {
        let (a, b, c) = (elems[0], elems[1], elems[2]);
        // Commutativity, associativity, distributivity.
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        prop_assert_eq!(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
        prop_assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
        // Identities.
        prop_assert_eq!(gf.mul(a, 1), a);
        prop_assert_eq!(gf.add(a, 0), a);
        prop_assert_eq!(gf.add(a, a), 0); // characteristic 2
        // Inverses.
        if a != 0 {
            prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
            prop_assert_eq!(gf.div(gf.mul(a, b), a), b);
        }
    }

    #[test]
    fn log_exp_consistency((gf, elems) in field_and_elems(4)) {
        let a = elems[0];
        if a != 0 {
            let l = gf.log(a).expect("nonzero has a log");
            prop_assert_eq!(gf.alpha_pow(l as i64), a);
        }
        prop_assert_eq!(gf.log(0), None);
    }

    #[test]
    fn pow_laws((gf, elems) in field_and_elems(4), e1 in 1i64..200, e2 in 1i64..200) {
        let a = elems[0];
        if a != 0 {
            prop_assert_eq!(gf.mul(gf.pow(a, e1), gf.pow(a, e2)), gf.pow(a, e1 + e2));
            prop_assert_eq!(gf.pow(gf.pow(a, e1), e2), gf.pow(a, e1 * e2));
            prop_assert_eq!(gf.mul(gf.pow(a, e1), gf.pow(a, -e1)), 1);
        }
    }

    #[test]
    fn poly_eval_is_ring_homomorphism((gf, elems) in field_and_elems(10)) {
        // eval(p·q, x) == eval(p, x) · eval(q, x)
        let x = elems[0];
        let split = elems.len() / 2;
        let (p, q) = (&elems[1..split.max(2)], &elems[split.max(2)..]);
        if !p.is_empty() && !q.is_empty() {
            let prod = gf.poly_mul(p, q);
            prop_assert_eq!(
                gf.poly_eval(&prod, x),
                gf.mul(gf.poly_eval(p, x), gf.poly_eval(q, x))
            );
        }
    }
}
