//! Galois-field GF(2^s) arithmetic for the Reed-Solomon baseline.
//!
//! Fields of width 2..=12 bits are supported, which covers every symbol size
//! the paper's Reed-Solomon comparisons use (4..=8 bits). Multiplication and
//! division run on log/antilog tables, mirroring the lookup-table hardware
//! implementation the paper synthesizes ("for simplicity, we picked lookup
//! tables to implement Galois Field arithmetic").
//!
//! # Examples
//!
//! ```
//! use muse_gf::Gf;
//!
//! # fn main() -> Result<(), muse_gf::GfError> {
//! let gf = Gf::new(8)?; // GF(256) with the standard polynomial 0x11D
//! let a = 0x53;
//! let b = 0xCA;
//! let p = gf.mul(a, b);
//! assert_eq!(gf.div(p, b), a);
//! assert_eq!(gf.add(a, a), 0); // characteristic 2
//! # Ok(())
//! # }
//! ```

use std::fmt;

/// Error constructing a [`Gf`] field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GfError {
    /// Field width outside the supported 2..=12 range.
    UnsupportedWidth(u32),
    /// The polynomial has the wrong degree for the width.
    WrongDegree {
        /// The rejected polynomial.
        poly: u32,
        /// The requested field width.
        width: u32,
    },
    /// The polynomial is not primitive (α does not generate the
    /// multiplicative group).
    NotPrimitive(u32),
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnsupportedWidth(w) => write!(f, "unsupported field width {w} (need 2..=12)"),
            Self::WrongDegree { poly, width } => {
                write!(f, "polynomial {poly:#x} does not have degree {width}")
            }
            Self::NotPrimitive(poly) => write!(f, "polynomial {poly:#x} is not primitive"),
        }
    }
}

impl std::error::Error for GfError {}

/// Default primitive polynomials per width (minimum-weight, the usual
/// standards: e.g. `x^8+x^4+x^3+x^2+1` for GF(256)).
const DEFAULT_POLYS: [u32; 13] = [
    0, 0, 0b111, 0b1011, 0x13, 0x25, 0x43, 0x89, 0x11D, 0x211, 0x409, 0x805, 0x1053,
];

/// A finite field GF(2^s) with log/antilog multiplication tables.
#[derive(Clone)]
pub struct Gf {
    width: u32,
    size: u32,
    poly: u32,
    exp: Vec<u16>,   // exp[i] = α^i for i in [0, 2(size-1))
    log: Vec<u16>,   // log[x] for x in [1, size)
    qroot: Vec<u16>, // qroot[c] = min y with y²+y=c, or NO_ROOT (Tr(c)=1)
}

/// Sentinel in the quadratic-root table: `y² + y = c` has no solution
/// (equivalently `Tr(c) = 1`, true for exactly half the field).
const NO_ROOT: u16 = u16::MAX;

impl fmt::Debug for Gf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf(2^{}, poly={:#x})", self.width, self.poly)
    }
}

impl Gf {
    /// Constructs GF(2^width) with the standard primitive polynomial.
    ///
    /// # Errors
    ///
    /// Fails if `width` is outside 2..=12.
    pub fn new(width: u32) -> Result<Self, GfError> {
        if !(2..=12).contains(&width) {
            return Err(GfError::UnsupportedWidth(width));
        }
        Self::with_poly(width, DEFAULT_POLYS[width as usize])
    }

    /// Constructs GF(2^width) with an explicit primitive polynomial
    /// (degree-`width`, given with its leading term, e.g. `0x11D`).
    ///
    /// # Errors
    ///
    /// Fails if the width is unsupported, the degree is wrong, or the
    /// polynomial is not primitive.
    pub fn with_poly(width: u32, poly: u32) -> Result<Self, GfError> {
        if !(2..=12).contains(&width) {
            return Err(GfError::UnsupportedWidth(width));
        }
        if 32 - poly.leading_zeros() != width + 1 {
            return Err(GfError::WrongDegree { poly, width });
        }
        let size = 1u32 << width;
        let mut exp = vec![0u16; 2 * (size as usize - 1)];
        let mut log = vec![0u16; size as usize];
        let mut x: u32 = 1;
        for (i, slot) in exp.iter_mut().enumerate().take(size as usize - 1) {
            if x == 1 && i != 0 {
                return Err(GfError::NotPrimitive(poly)); // short cycle
            }
            *slot = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & size != 0 {
                x ^= poly;
            }
        }
        if x != 1 {
            return Err(GfError::NotPrimitive(poly));
        }
        for i in 0..size as usize - 1 {
            exp[i + size as usize - 1] = exp[i];
        }
        let mut gf = Self {
            width,
            size,
            poly,
            exp,
            log,
            qroot: Vec::new(),
        };
        // Tabulated half-trace: y ↦ y² + y is 2-to-1 (y and y+1 collide)
        // onto the trace-zero hyperplane, so recording the smaller preimage
        // of every image yields a constant-time solver for the normalized
        // quadratic y² + y = c — the root step of the closed-form t = 2
        // error locator in `muse-rs`.
        let mut qroot = vec![NO_ROOT; size as usize];
        for y in 0..size as u16 {
            let c = gf.mul(y, y) ^ y;
            if qroot[c as usize] == NO_ROOT {
                qroot[c as usize] = y;
            }
        }
        gf.qroot = qroot;
        Ok(gf)
    }

    /// Field width `s` in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of field elements `2^s`.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// The construction polynomial.
    pub fn poly(&self) -> u32 {
        self.poly
    }

    /// Addition (= subtraction): bitwise XOR.
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Multiplication via log/antilog tables.
    ///
    /// # Panics
    ///
    /// Panics (debug) if an operand is outside the field.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!((a as u32) < self.size && (b as u32) < self.size);
        if a == 0 || b == 0 {
            return 0;
        }
        self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
    }

    /// Division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "GF division by zero");
        if a == 0 {
            return 0;
        }
        let order = self.size as usize - 1;
        let diff = (self.log[a as usize] as usize + order - self.log[b as usize] as usize) % order;
        self.exp[diff]
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        self.div(1, a)
    }

    /// `α^i` for any integer exponent (negative exponents allowed).
    pub fn alpha_pow(&self, i: i64) -> u16 {
        let order = self.size as i64 - 1;
        let e = i.rem_euclid(order) as usize;
        self.exp[e]
    }

    /// `a^e` by exponent arithmetic in the log domain.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0` and `e <= 0`.
    pub fn pow(&self, a: u16, e: i64) -> u16 {
        if a == 0 {
            assert!(e > 0, "0^e undefined for e <= 0");
            return 0;
        }
        let order = self.size as i64 - 1;
        let la = self.log[a as usize] as i64;
        self.exp[(la * e).rem_euclid(order) as usize]
    }

    /// `α^(la + lb)` for two discrete logs `la, lb < 2^s − 1`: one lookup
    /// in the doubled antilog table, no modular reduction — the hot-loop
    /// form of a product whose factors' logs are already known.
    #[inline]
    pub fn exp_sum(&self, la: u32, lb: u32) -> u16 {
        self.exp[(la + lb) as usize]
    }

    /// `α^e` for an exponent already known to lie in `[0, 2(2^s − 1))`: a
    /// bare doubled-antilog lookup. The division-free form of
    /// [`Self::alpha_pow`] for hot loops whose exponent arithmetic is
    /// bounded by construction (reduce with conditional subtraction of the
    /// group order first).
    ///
    /// # Panics
    ///
    /// Panics if `e ≥ 2(2^s − 1)`.
    #[inline]
    pub fn exp_at(&self, e: u32) -> u16 {
        self.exp[e as usize]
    }

    /// Discrete log base α, or `None` for zero.
    pub fn log(&self, a: u16) -> Option<u32> {
        if a == 0 {
            None
        } else {
            Some(self.log[a as usize] as u32)
        }
    }

    /// The absolute trace `Tr(a) = a + a² + a⁴ + … + a^(2^(s-1))`,
    /// always 0 or 1.
    pub fn trace(&self, a: u16) -> u16 {
        let mut acc = 0u16;
        let mut x = a;
        for _ in 0..self.width {
            acc ^= x;
            x = self.mul(x, x);
        }
        debug_assert!(acc <= 1, "trace lies in the prime subfield");
        acc
    }

    /// Solves the normalized quadratic `y² + y = c` in constant time via
    /// the precomputed half-trace table: returns the smaller root (the
    /// other is `y ^ 1`), or `None` when `Tr(c) = 1` and no root exists.
    #[inline]
    pub fn quad_solve(&self, c: u16) -> Option<u16> {
        match self.qroot[c as usize] {
            NO_ROOT => None,
            y => Some(y),
        }
    }

    /// Evaluates a polynomial (coefficients low-degree-first) at `x` by
    /// Horner's rule.
    pub fn poly_eval(&self, coeffs: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in coeffs.iter().rev() {
            acc = self.add(self.mul(acc, x), c);
        }
        acc
    }

    /// Multiplies two polynomials (coefficients low-degree-first).
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is empty.
    pub fn poly_mul(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        assert!(!a.is_empty() && !b.is_empty(), "empty polynomial");
        let mut out = vec![0u16; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ai, bj);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_default_polys_are_primitive() {
        for width in 2..=12 {
            let gf = Gf::new(width).unwrap();
            assert_eq!(gf.size(), 1 << width);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(Gf::new(1), Err(GfError::UnsupportedWidth(1))));
        assert!(matches!(Gf::new(13), Err(GfError::UnsupportedWidth(13))));
        assert!(matches!(
            Gf::with_poly(8, 0x3),
            Err(GfError::WrongDegree { .. })
        ));
        // x^4 + x^3 + x^2 + x + 1 has order 5, not primitive in GF(16).
        assert!(matches!(
            Gf::with_poly(4, 0b11111),
            Err(GfError::NotPrimitive(0b11111))
        ));
    }

    #[test]
    fn gf16_multiplication_table_spot_checks() {
        let gf = Gf::new(4).unwrap(); // x^4 + x + 1
        assert_eq!(gf.mul(0b0010, 0b0010), 0b0100); // α·α = α²
        assert_eq!(gf.mul(0b1000, 0b0010), 0b0011); // α³·α = α⁴ = α+1
        assert_eq!(gf.mul(0, 7), 0);
        assert_eq!(gf.mul(1, 7), 7);
    }

    #[test]
    fn field_axioms_exhaustive_gf16() {
        let gf = Gf::new(4).unwrap();
        let n = gf.size() as u16;
        for a in 0..n {
            for b in 0..n {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in 0..n {
                    assert_eq!(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
                    assert_eq!(gf.mul(a, gf.add(b, c)), gf.add(gf.mul(a, b), gf.mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn inverses_gf256() {
        let gf = Gf::new(8).unwrap();
        for a in 1..256u16 {
            let inv = gf.inv(a);
            assert_eq!(gf.mul(a, inv), 1, "a={a}");
            assert_eq!(gf.div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let gf = Gf::new(4).unwrap();
        let _ = gf.div(3, 0);
    }

    #[test]
    fn alpha_powers_wrap() {
        let gf = Gf::new(8).unwrap();
        assert_eq!(gf.alpha_pow(0), 1);
        assert_eq!(gf.alpha_pow(255), 1);
        assert_eq!(gf.alpha_pow(-1), gf.inv(gf.alpha_pow(1)));
        assert_eq!(gf.alpha_pow(256), gf.alpha_pow(1));
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf::new(5).unwrap();
        for a in 1..32u16 {
            let mut acc = 1u16;
            for e in 0..40i64 {
                assert_eq!(gf.pow(a, e), acc, "a={a} e={e}");
                acc = gf.mul(acc, a);
            }
        }
    }

    #[test]
    fn log_exp_roundtrip() {
        let gf = Gf::new(6).unwrap();
        assert_eq!(gf.log(0), None);
        for a in 1..64u16 {
            let l = gf.log(a).unwrap();
            assert_eq!(gf.alpha_pow(l as i64), a);
        }
    }

    #[test]
    fn trace_is_additive_and_balanced() {
        for width in [4u32, 8] {
            let gf = Gf::new(width).unwrap();
            let n = gf.size() as u16;
            let ones: u32 = (0..n).map(|a| gf.trace(a) as u32).sum();
            // Tr is a surjective linear form onto GF(2): half the field
            // on each fiber.
            assert_eq!(ones, gf.size() / 2);
            for a in 0..n {
                for b in [0u16, 1, 7, n - 1] {
                    assert_eq!(gf.trace(a ^ b), gf.trace(a) ^ gf.trace(b));
                }
                // Frobenius invariance: Tr(a²) = Tr(a).
                assert_eq!(gf.trace(gf.mul(a, a)), gf.trace(a));
            }
        }
    }

    #[test]
    fn quad_solve_exhaustive() {
        for width in [4u32, 8, 10] {
            let gf = Gf::new(width).unwrap();
            for c in 0..gf.size() as u16 {
                match gf.quad_solve(c) {
                    Some(y) => {
                        assert_eq!(gf.mul(y, y) ^ y, c, "root check c={c}");
                        // The companion root is y+1; the table holds the
                        // smaller one, and solvable ⇔ Tr(c) = 0.
                        let y2 = y ^ 1;
                        assert_eq!(gf.mul(y2, y2) ^ y2, c);
                        assert_eq!(y, y.min(y2));
                        assert_eq!(gf.trace(c), 0, "c={c}");
                    }
                    None => assert_eq!(gf.trace(c), 1, "c={c}"),
                }
            }
        }
    }

    #[test]
    fn poly_eval_horner() {
        let gf = Gf::new(4).unwrap();
        // p(x) = 3 + x (coefficients low-first): p(α) = 3 ^ α
        let p = [3u16, 1];
        assert_eq!(gf.poly_eval(&p, 2), 3 ^ 2);
        assert_eq!(gf.poly_eval(&[], 5), 0);
    }

    #[test]
    fn poly_mul_against_eval() {
        let gf = Gf::new(8).unwrap();
        let a = [1u16, 7, 0, 3];
        let b = [5u16, 2];
        let prod = gf.poly_mul(&a, &b);
        for x in [0u16, 1, 2, 77, 200] {
            assert_eq!(
                gf.poly_eval(&prod, x),
                gf.mul(gf.poly_eval(&a, x), gf.poly_eval(&b, x))
            );
        }
    }
}
