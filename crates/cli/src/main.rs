//! Thin binary wrapper over [`muse_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match muse_cli::run(&args) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
