//! `muse-tool`: a command-line interface to the MUSE ECC library.
//!
//! Subcommands:
//!
//! * `presets` — list the built-in codes.
//! * `inspect <preset>` — parameters, ELC size, detection headroom.
//! * `encode <preset> <hex-data> [--meta <hex>]` — produce a codeword.
//! * `decode <preset> <hex-codeword>` — decode/correct a codeword.
//! * `search --bits N [--symbol S] [--redundancy R] [--interleaved]
//!   [--asym] [--single-bit] [--limit K]` — run Algorithm 1.
//! * `msed <preset> [--trials N] [--devices K] [--threads T]` —
//!   Monte-Carlo detection rate (parallel; bit-identical at any `T`).
//! * `rsmsed [--t 1|2] [--symbol-bits S] [--device-bits D] [--trials N]
//!   [--devices K] [--threads T]` — the Reed-Solomon comparator on the
//!   144-bit channel, classified in the GF-syndrome domain for both `t`
//!   values (no wide decode per trial).
//! * `lifetime [--dimms N] [--years Y] [--scrub-hours H] [--spares S]
//!   [--seed X] [--threads T] [--estimator naive|is] [--bias F]
//!   [--shards K] [--checkpoint-dir D] [--resume] [--inject SPEC]
//!   [--trace FILE] [--metrics FILE] [--progress] [--smoke]` — the
//!   fleet-lifetime scenario matrix: DUE/SDC/repair
//!   rates per machine-year for every code × environment (three
//!   synthetic plus two field-calibrated rate sets), with erasure-mode
//!   degraded operation (see the `muse-lifetime` crate). DUE/SDC
//!   columns quote 95% confidence intervals; zero observed events print
//!   the rule-of-three upper bound (`<x @95%`), never a bare zero.
//!   `--estimator is` switches to importance sampling with
//!   likelihood-ratio reweighting (`--bias` sets the rate-inflation
//!   factor and implies `is`; default 16). With `--checkpoint-dir`
//!   every cell runs through the crash-safe sharded supervisor
//!   (checkpoints survive interruption; `--resume` continues
//!   bit-identically); `--inject` drives the deterministic fault plan
//!   (`kill=<p>,crash-after=<n>,corrupt=<gen>:<truncate|bitflip>,`
//!   `delay=<ms>,fault-seed=<x>`); `--smoke` checks the pinned CI
//!   tallies instead of printing the matrix. Observability (strictly
//!   observational — tallies stay bit-identical): `--trace` streams
//!   `muse-trace/v1` JSONL events, `--metrics` snapshots a Prometheus
//!   textfile after every shard, `--progress` prints heartbeat lines
//!   (shards done, machine-years, ETA, live 95% CI half-widths) to
//!   stderr; any of the three routes cells through the sharded
//!   supervisor. Shard retries and checkpoint-corruption fallbacks are
//!   warned on stderr as they happen.
//! * `submit` / `serve` / `status` / `result` / `smoke-check` — the
//!   `muse-service` spool daemon (see that crate's docs for the spool
//!   layout and drain semantics). `submit` enqueues lifetime-run jobs
//!   (`--smoke` enqueues the four pinned smoke cells); `serve` runs the
//!   daemon — `--once` drains the queue and exits, otherwise it polls
//!   until SIGTERM/SIGINT trips a graceful drain (finish the shard,
//!   checkpoint, re-queue, exit 0; a restart adopts the checkpoints and
//!   resumes bit-identically). Repeated configurations are served from
//!   the CRC-checked result cache without recomputing. `--watchdog-ms`
//!   arms the per-shard watchdog; `--inject` accepts the lifetime fault
//!   keys plus `hang=<p>`, `hang-ms=<n>` and the I/O chaos keys
//!   (`enospc`, `short-write`, `fsync-fail`, `rename-fail`,
//!   `corrupt-record`, `sink-fail`, `sink-block-ms`, `io-seed`).
//!   `smoke-check` verifies finished smoke results against the pinned
//!   tallies.
//!
//! The command layer is a plain function from parsed arguments to a
//! [`String`], so every path is unit-testable without spawning processes.

use muse_core::analysis::remainder_profile;
use muse_core::{presets, CodeBuilder, Decoded, MuseCode, SearchOptions, Shuffle, Word};
use muse_faultsim::{muse_msed, MsedConfig};

/// Error surfaced to the CLI user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
muse-tool — residue codes for modern memories

USAGE:
  muse-tool presets
  muse-tool inspect <preset>
  muse-tool encode <preset> <hex-data> [--meta <hex>]
  muse-tool decode <preset> <hex-codeword>
  muse-tool search --bits <n> [--symbol <s>] [--redundancy <r>]
                   [--interleaved] [--asym] [--single-bit] [--limit <k>]
  muse-tool msed <preset> [--trials <n>] [--devices <k>] [--threads <t>]
  muse-tool rsmsed [--t <1|2>] [--symbol-bits <s>] [--device-bits <d>]
                   [--trials <n>] [--devices <k>] [--threads <t>]
  muse-tool lifetime [--dimms <n>] [--years <y>] [--scrub-hours <h>]
                     [--spares <s>] [--seed <x>] [--threads <t>]
                     [--estimator <naive|is>] [--bias <factor>]
                     [--shards <k>] [--checkpoint-dir <dir>] [--resume]
                     [--inject <spec>] [--trace <file>] [--metrics <file>]
                     [--progress] [--smoke]
  muse-tool submit [--root <dir>] (--smoke | [--code <name>] [--env <name>]
                   [--dimms <n>] [--years <y>] [--scrub-hours <h>]
                   [--spares <s>] [--seed <x>] [--estimator <naive|is>]
                   [--bias <f>]) [--shards <k>] [--threads <t>]
  muse-tool serve [--root <dir>] [--once] [--poll-ms <n>] [--watchdog-ms <n>]
                  [--max-retries <n>] [--backoff-ms <n>]
                  [--checkpoint-every <n>] [--inject <spec>]
                  [--trace <file>] [--metrics <file>]
  muse-tool status [--root <dir>]
  muse-tool result <id> [--root <dir>]
  muse-tool smoke-check [--root <dir>]
  muse-tool verilog <preset> [--syndrome-only|--corrector]
  muse-tool spec <preset>

PRESETS: muse144_132 muse80_69 muse80_67 muse80_70 muse268_256 muse144_128";

/// Resolves a preset name.
pub fn preset(name: &str) -> Result<MuseCode, CliError> {
    match name {
        "muse144_132" => Ok(presets::muse_144_132()),
        "muse80_69" => Ok(presets::muse_80_69()),
        "muse80_67" => Ok(presets::muse_80_67()),
        "muse80_70" => Ok(presets::muse_80_70()),
        "muse268_256" => Ok(presets::muse_268_256()),
        "muse144_128" => Ok(presets::muse_144_128()),
        other => Err(err(format!(
            "unknown preset {other:?}; try `muse-tool presets`"
        ))),
    }
}

/// Runs one parsed command line (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message for any invalid
/// invocation.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help" | "--help" | "-h") => Ok(USAGE.to_string()),
        Some("presets") => Ok([
            "muse144_132  DDR4 x4 ChipKill, m=4065, 4 spare bits over 2x64b",
            "muse80_69    DDR5 x4 ChipKill, m=2005, 5 spare bits",
            "muse80_67    DDR5 x8 retention (C8A), m=5621, 3 spare bits",
            "muse80_70    hybrid C4A_U1B, m=821, 6 spare bits",
            "muse268_256  PIM/HBM2, m=3621, 12 check bits",
            "muse144_128  max-detection variant, m=65519",
        ]
        .join("\n")),
        Some("inspect") => {
            let code = preset(it.next().ok_or_else(|| err("inspect needs a preset"))?)?;
            let profile = remainder_profile(&code);
            Ok(format!(
                "{name}\n  class        {class}\n  multiplier   {m}\n  n/k/r        {n}/{k}/{r} bits\n  devices      {devs} x{s}\n  spare bits   {spare}\n  ELC entries  {elc}\n  headroom     {head:.1}% of remainders unused",
                name = code.name(),
                class = code.class_name(),
                m = code.multiplier(),
                n = code.n_bits(),
                k = code.k_bits(),
                r = code.r_bits(),
                devs = code.symbol_map().num_symbols(),
                s = code.symbol_map().bits_of(0).len(),
                spare = code.spare_bits(),
                elc = code.elc().len(),
                head = 100.0 * profile.headroom,
            ))
        }
        Some("encode") => {
            let code = preset(it.next().ok_or_else(|| err("encode needs a preset"))?)?;
            let data = parse_hex(it.next().ok_or_else(|| err("encode needs hex data"))?)?;
            let rest: Vec<&str> = it.collect();
            let meta = match flag_value(&rest, "--meta")? {
                Some(v) => parse_hex(v)?
                    .to_u64()
                    .ok_or_else(|| err("metadata too wide"))?,
                None => 0,
            };
            let payload = if meta != 0 || code.spare_bits() > 0 && data.bit_len() <= 64 {
                let d = data.to_u64().ok_or_else(|| {
                    err("data wider than 64 bits; omit --meta and pass a full payload")
                })?;
                code.pack_metadata(d, meta)
            } else {
                data
            };
            if payload.bit_len() > code.k_bits() {
                return Err(err(format!("payload exceeds {} bits", code.k_bits())));
            }
            Ok(format!("{:#x}", code.encode(&payload)))
        }
        Some("decode") => {
            let code = preset(it.next().ok_or_else(|| err("decode needs a preset"))?)?;
            let cw = parse_hex(
                it.next()
                    .ok_or_else(|| err("decode needs a hex codeword"))?,
            )?;
            if cw.bit_len() > code.n_bits() {
                return Err(err(format!("codeword exceeds {} bits", code.n_bits())));
            }
            Ok(match code.decode(&cw) {
                Decoded::Clean { payload } => format!("clean: payload {payload:#x}"),
                Decoded::Corrected {
                    payload,
                    symbol,
                    error,
                } => {
                    format!("corrected device {symbol} (error {error}): payload {payload:#x}")
                }
                Decoded::Detected => "UNCORRECTABLE: multi-device error detected".to_string(),
            })
        }
        Some("search") => {
            let rest: Vec<&str> = it.collect();
            let bits: u32 = require_parsed(&rest, "--bits")?;
            let symbol: u32 = parse_or(&rest, "--symbol", 4)?;
            let redundancy: u32 = parse_or(&rest, "--redundancy", 12)?;
            let limit: usize = parse_or(&rest, "--limit", 0)?;
            let mut builder = CodeBuilder::new(bits)
                .symbol_bits(symbol)
                .redundancy_bits(redundancy)
                .search_options(SearchOptions { threads: 0, limit });
            if has_flag(&rest, "--interleaved") {
                builder = builder.shuffle(Shuffle::Interleaved);
            }
            if has_flag(&rest, "--asym") {
                builder = builder.direction(muse_core::Direction::OneToZero);
            }
            if has_flag(&rest, "--single-bit") {
                builder = builder.with_single_bit_errors(muse_core::Direction::Bidirectional);
            }
            let map = builder.layout().map_err(|e| err(e.to_string()))?;
            let model = builder.model();
            let found = muse_core::find_multipliers(
                &map,
                &model,
                redundancy,
                SearchOptions { threads: 0, limit },
            );
            if found.is_empty() {
                Ok(format!(
                    "no valid {redundancy}-bit multiplier for {bits}b/{symbol}-bit {}",
                    model.name(symbol)
                ))
            } else {
                Ok(format!(
                    "{} multiplier(s) for {bits}b/{symbol}-bit {}: {found:?}",
                    found.len(),
                    model.name(symbol)
                ))
            }
        }
        Some("verilog") => {
            let code = preset(it.next().ok_or_else(|| err("verilog needs a preset"))?)?;
            let rest: Vec<&str> = it.collect();
            let name = code
                .name()
                .replace(['(', ')'], "_")
                .replace(',', "_")
                .to_lowercase();
            if has_flag(&rest, "--syndrome-only") {
                Ok(muse_hw::emit_remainder_module(&code, &format!("{name}rem")))
            } else if has_flag(&rest, "--corrector") {
                Ok(muse_hw::emit_corrector_module(
                    &code,
                    &format!("{name}corr"),
                ))
            } else {
                Ok(muse_hw::emit_encoder_module(&code, &format!("{name}enc")))
            }
        }
        Some("spec") => {
            let code = preset(it.next().ok_or_else(|| err("spec needs a preset"))?)?;
            Ok(code.to_spec_string())
        }
        Some("msed") => {
            let code = preset(it.next().ok_or_else(|| err("msed needs a preset"))?)?;
            let rest: Vec<&str> = it.collect();
            let trials: u64 = parse_or(&rest, "--trials", 10_000)?;
            let devices: usize = parse_or(&rest, "--devices", 2)?;
            let threads: usize = parse_or(&rest, "--threads", 0)?;
            let stats = muse_msed(
                &code,
                MsedConfig {
                    trials,
                    failing_devices: devices,
                    threads,
                    ..MsedConfig::default()
                },
            );
            Ok(format!(
                "{}: {:.2}% of {} {}-device errors detected ({} miscorrected, {} silent)",
                code.name(),
                stats.detection_rate(),
                trials,
                devices,
                stats.miscorrected,
                stats.silent
            ))
        }
        Some("rsmsed") => {
            let rest: Vec<&str> = it.collect();
            let t: usize = parse_or(&rest, "--t", 1)?;
            let symbol_bits: u32 = parse_or(&rest, "--symbol-bits", 8)?;
            let device_bits: u32 = parse_or(&rest, "--device-bits", 4)?;
            if !(1..=16).contains(&device_bits) {
                return Err(err("--device-bits must be in 1..=16"));
            }
            let trials: u64 = parse_or(&rest, "--trials", 10_000)?;
            let devices: usize = parse_or(&rest, "--devices", 2)?;
            let threads: usize = parse_or(&rest, "--threads", 0)?;
            let code = muse_rs::RsMemoryCode::new(symbol_bits, 144, t)
                .map_err(|e| err(format!("bad RS geometry: {e}")))?;
            let stats = muse_faultsim::rs_msed(
                &code,
                device_bits,
                muse_faultsim::RsDetectMode::DeviceConfined,
                MsedConfig {
                    trials,
                    failing_devices: devices,
                    threads,
                    ..MsedConfig::default()
                },
            );
            Ok(format!(
                "{} t={}: {:.2}% of {} {}-device errors detected \
                 ({} corrected, {} miscorrected, {} silent)",
                code.name(),
                t,
                stats.detection_rate(),
                trials,
                devices,
                stats.corrected,
                stats.miscorrected,
                stats.silent
            ))
        }
        Some("lifetime") => {
            let rest: Vec<&str> = it.collect();
            let smoke = has_flag(&rest, "--smoke");
            let (smoke_env, smoke_config) = muse_lifetime::smoke_setup();
            let mut config = if smoke {
                smoke_config
            } else {
                muse_lifetime::FleetConfig {
                    dimms: parse_or(&rest, "--dimms", 1024)?,
                    years: parse_or(&rest, "--years", 5.0)?,
                    scrub_interval_hours: parse_or(&rest, "--scrub-hours", 12.0)?,
                    spares_per_dimm: parse_or(&rest, "--spares", 0)?,
                    ..muse_lifetime::FleetConfig::default()
                }
            };
            // Seed/threads stay overridable even under --smoke: threads
            // never changes tallies, and a seed change is exactly what the
            // config-hash fencing tests need to provoke.
            config.seed = parse_or(&rest, "--seed", config.seed)?;
            config.threads = parse_or(&rest, "--threads", config.threads)?;
            config.estimator = parse_estimator(&rest)?;
            let shards: u32 = parse_or(&rest, "--shards", 0)?;
            let checkpoint_dir =
                flag_value(&rest, "--checkpoint-dir")?.map(std::path::PathBuf::from);
            let resume = has_flag(&rest, "--resume");
            let (faults, crash_after) = match flag_value(&rest, "--inject")? {
                Some(spec) => {
                    let (plan, crash) = parse_inject(spec)?;
                    (Some(plan), crash)
                }
                None => (None, None),
            };
            let envs = if smoke {
                vec![smoke_env]
            } else {
                muse_lifetime::all_environments()
            };
            let trace = flag_value(&rest, "--trace")?.map(std::path::PathBuf::from);
            let metrics = flag_value(&rest, "--metrics")?.map(std::path::PathBuf::from);
            let progress = has_flag(&rest, "--progress");
            // Any observability flag routes cells through the sharded
            // supervisor — that is where the events live.
            let sharded = checkpoint_dir.is_some()
                || shards != 0
                || faults.is_some()
                || trace.is_some()
                || metrics.is_some()
                || progress;
            let (reports, banners) = run_lifetime_cells(
                &muse_lifetime::scenario_codes(),
                &envs,
                &config,
                LifetimeRun {
                    sharded,
                    shards,
                    checkpoint_dir,
                    resume,
                    faults,
                    crash_after,
                    trace,
                    metrics,
                    progress,
                },
            )?;
            let mut out = String::new();
            for banner in &banners {
                out.push_str(banner);
                out.push('\n');
            }
            if smoke {
                muse_lifetime::verify_smoke(&reports)
                    .map_err(|drift| err(format!("smoke pin mismatch: {drift}")))?;
                out.push_str(&format!(
                    "smoke tallies match the pins for all {} codes",
                    reports.len()
                ));
                return Ok(out);
            }
            let est_label = match config.estimator {
                muse_lifetime::Estimator::Naive => "naive".to_string(),
                muse_lifetime::Estimator::Importance { bias } => {
                    format!("is bias={bias}")
                }
            };
            out.push_str(&format!(
                "fleet: {} DIMMs x {} years ({:.0} machine-years), scrub every {}h, {} spares/DIMM, estimator {}\n\n{:<16} {:<21} {:>22} {:>22} {:>11} {:>9} {:>9}\n",
                config.dimms,
                config.years,
                config.machine_years(),
                config.scrub_interval_hours,
                config.spares_per_dimm,
                est_label,
                "code",
                "environment",
                "DUE/m-yr [95% CI]",
                "SDC/m-yr [95% CI]",
                "repairs/yr",
                "degraded",
                "era-reads",
            ));
            for r in &reports {
                out.push_str(&format!(
                    "{:<16} {:<21} {:>22} {:>22} {:>11.4} {:>8.2}% {:>9}\n",
                    r.code,
                    r.environment,
                    r.due_estimate.render(),
                    r.sdc_estimate.render(),
                    r.repairs_per_machine_year,
                    100.0 * r.degraded_fraction,
                    r.tally.erasure_reads,
                ));
            }
            out.push_str(
                "\nDUE/SDC are per machine-year (word DUEs + data-loss events) with 95% \
                 confidence intervals; `<x @95%` marks the rule-of-three upper bound when zero \
                 events were observed; degraded = fraction of DIMM-epochs in erasure-mode \
                 operation.\nDeterministic: tallies are bit-identical at any --threads value.",
            );
            Ok(out)
        }
        Some("submit") => {
            let rest: Vec<&str> = it.collect();
            let spool = open_spool(&rest)?;
            let shards: u32 = parse_or(&rest, "--shards", 0)?;
            let threads: usize = parse_or(&rest, "--threads", 0)?;
            let default = muse_service::JobSpec::default();
            let specs: Vec<muse_service::JobSpec> = if has_flag(&rest, "--smoke") {
                // The four pinned smoke cells, in scenario order.
                ["muse144_132", "muse80_69", "rs144_128_t1", "rs144_112_t2"]
                    .into_iter()
                    .map(|code| muse_service::JobSpec {
                        code: code.to_string(),
                        env: "smoke".to_string(),
                        smoke: true,
                        shards,
                        threads,
                        ..muse_service::JobSpec::default()
                    })
                    .collect()
            } else {
                vec![muse_service::JobSpec {
                    code: flag_value(&rest, "--code")?.unwrap_or("muse144_132").into(),
                    env: flag_value(&rest, "--env")?
                        .unwrap_or("transient-dominant")
                        .into(),
                    smoke: false,
                    dimms: parse_or(&rest, "--dimms", default.dimms)?,
                    years: parse_or(&rest, "--years", default.years)?,
                    scrub_hours: parse_or(&rest, "--scrub-hours", default.scrub_hours)?,
                    spares: parse_or(&rest, "--spares", default.spares)?,
                    seed: parse_or(&rest, "--seed", default.seed)?,
                    estimator: flag_value(&rest, "--estimator")?.unwrap_or("naive").into(),
                    bias: parse_or(&rest, "--bias", default.bias)?,
                    shards,
                    threads,
                }]
            };
            let mut out = String::new();
            for spec in &specs {
                match spool.submit(spec).map_err(err)? {
                    (id, true) => {
                        out.push_str(&format!("submitted {id} ({} @ {})\n", spec.code, spec.env));
                    }
                    (id, false) => out.push_str(&format!(
                        "duplicate {id} ({} @ {}) — already queued\n",
                        spec.code, spec.env
                    )),
                }
            }
            Ok(out.trim_end().to_string())
        }
        Some("serve") => {
            let rest: Vec<&str> = it.collect();
            let drain = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            #[cfg(unix)]
            install_drain_handler(&drain);
            let faults = match flag_value(&rest, "--inject")? {
                Some(spec) => Some(parse_inject(spec)?.0),
                None => None,
            };
            let config = muse_service::ServiceConfig {
                root: std::path::PathBuf::from(
                    flag_value(&rest, "--root")?.unwrap_or("muse-spool"),
                ),
                once: has_flag(&rest, "--once"),
                poll_ms: parse_or(&rest, "--poll-ms", 200)?,
                drain,
                watchdog_ms: match flag_value(&rest, "--watchdog-ms")? {
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| err(format!("--watchdog-ms: cannot parse {v:?}")))?,
                    ),
                    None => None,
                },
                max_retries: parse_or(&rest, "--max-retries", 4)?,
                backoff_base_ms: parse_or(&rest, "--backoff-ms", 20)?,
                checkpoint_every: parse_or(&rest, "--checkpoint-every", 1)?,
                faults,
            };
            let trace = flag_value(&rest, "--trace")?.map(std::path::PathBuf::from);
            let tracer = match &trace {
                Some(path) => Some(
                    muse_telemetry::Tracer::to_file(path, muse_telemetry::DEFAULT_CAPACITY)
                        .map_err(|e| err(format!("--trace {}: {e}", path.display())))?,
                ),
                None => None,
            };
            let metrics_path = flag_value(&rest, "--metrics")?.map(std::path::PathBuf::from);
            let registry = metrics_path.is_some().then(muse_telemetry::Metrics::new);
            let telemetry = muse_service::ServiceTelemetry {
                metrics: registry.as_ref(),
                metrics_path,
                tracer: tracer.as_ref(),
                warn: Some(Box::new(|line: &str| eprintln!("{line}"))),
            };
            let report =
                muse_service::serve(&config, &telemetry).map_err(|e| err(format!("serve: {e}")))?;
            drop(telemetry);
            if let Some(tracer) = tracer {
                let summary = tracer.finish();
                eprintln!(
                    "trace: {} events written, {} dropped, {} sink errors",
                    summary.written, summary.dropped, summary.io_errors
                );
            }
            let summary = format!(
                "serve: {} job(s) completed ({} from cache), {} failed, {} orphan(s) adopted{}",
                report.jobs_completed,
                report.cache_hits,
                report.jobs_failed,
                report.adopted,
                if report.drained {
                    "; drained cleanly — queue and checkpoints persisted, restart resumes"
                } else {
                    ""
                },
            );
            if report.jobs_failed > 0 {
                // Loud failure: chaos runs and CI must see a nonzero exit,
                // with the per-job evidence preserved in failed/.
                return Err(err(format!("{summary}\nsee failed/ for specs and errors")));
            }
            Ok(summary)
        }
        Some("status") => {
            let rest: Vec<&str> = it.collect();
            let spool = open_spool(&rest)?;
            let s = spool.status().map_err(|e| err(format!("status: {e}")))?;
            Ok(format!(
                "queued: {}\nactive: {}\ndone: {}\nfailed: {}",
                s.queued, s.active, s.done, s.failed
            ))
        }
        Some("result") => {
            let id = it.next().ok_or_else(|| err("result needs a job id"))?;
            let rest: Vec<&str> = it.collect();
            let spool = open_spool(&rest)?;
            spool
                .result_json(id)
                .map(|json| json.trim_end().to_string())
                .map_err(|e| err(format!("result {id}: {e} (is the job done?)")))
        }
        Some("smoke-check") => {
            let rest: Vec<&str> = it.collect();
            let spool = open_spool(&rest)?;
            let pins = muse_lifetime::smoke_expected();
            let mut checked = 0;
            for code in ["muse144_132", "muse80_69", "rs144_128_t1", "rs144_112_t2"] {
                let spec = muse_service::JobSpec {
                    code: code.to_string(),
                    env: "smoke".to_string(),
                    smoke: true,
                    ..muse_service::JobSpec::default()
                };
                let id = spec.job_id().map_err(err)?;
                let json = spool
                    .result_json(&id)
                    .map_err(|e| err(format!("smoke-check: job {id} ({code}): {e}")))?;
                let result = muse_service::JobResult::from_json(&json).map_err(err)?;
                let pin = pins
                    .iter()
                    .find(|p| p.code == result.code)
                    .ok_or_else(|| err(format!("smoke-check: no pin for code {}", result.code)))?;
                let t = &result.tally;
                let got = (t.due_words, t.sdc_words, t.corrected_words, t.erasure_reads);
                let want = (
                    pin.due_words,
                    pin.sdc_words,
                    pin.corrected_words,
                    pin.erasure_reads,
                );
                if got != want {
                    return Err(err(format!(
                        "smoke-check: {} tallies drifted: got {got:?}, pinned {want:?}",
                        result.code
                    )));
                }
                checked += 1;
            }
            Ok(format!(
                "service smoke results match the pins for all {checked} codes"
            ))
        }
        Some(other) => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

/// Opens the spool at `--root` (default `muse-spool`).
fn open_spool(rest: &[&str]) -> Result<muse_service::Spool, CliError> {
    let root = std::path::PathBuf::from(flag_value(rest, "--root")?.unwrap_or("muse-spool"));
    muse_service::Spool::open(&root).map_err(|e| err(format!("spool {}: {e}", root.display())))
}

/// Wires SIGTERM/SIGINT to the daemon's drain flag. The handler only
/// flips a static (async-signal-safe); a detached watcher thread
/// forwards it into the `Arc` the service polls at shard boundaries.
#[cfg(unix)]
fn install_drain_handler(drain: &std::sync::Arc<std::sync::atomic::AtomicBool>) {
    use std::sync::atomic::{AtomicBool, Ordering};
    static SIGNALED: AtomicBool = AtomicBool::new(false);
    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    let drain = std::sync::Arc::clone(drain);
    let _ = std::thread::Builder::new()
        .name("muse-drain".to_string())
        .spawn(move || loop {
            if SIGNALED.load(Ordering::Relaxed) {
                drain.store(true, Ordering::Relaxed);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(25));
        });
}

/// How the `lifetime` subcommand should execute its matrix cells.
struct LifetimeRun {
    /// Route cells through the sharded supervisor (any of the sharding
    /// flags present) instead of the plain simulator.
    sharded: bool,
    shards: u32,
    checkpoint_dir: Option<std::path::PathBuf>,
    resume: bool,
    faults: Option<muse_lifetime::FaultPlan>,
    crash_after: Option<u64>,
    /// Stream `muse-trace/v1` JSONL events to this file.
    trace: Option<std::path::PathBuf>,
    /// Snapshot a Prometheus textfile here after every shard.
    metrics: Option<std::path::PathBuf>,
    /// Print heartbeat progress lines to stderr.
    progress: bool,
}

/// One checkpoint prefix per matrix cell, so every cell's generations
/// live in their own slot files inside the shared directory.
fn cell_prefix(code: &muse_lifetime::FleetCode, env: &muse_lifetime::Environment) -> String {
    format!("{}-{}", code.name(), env.name)
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

/// Runs every `codes × envs` cell, through the crash-safe sharded
/// supervisor when requested, returning the reports plus any resume
/// banners. An injected crash (`crash-after=<n>`) surfaces as an error so
/// the process exits nonzero with the checkpoint safely on disk.
/// Telemetry sinks (trace writer, metrics registry) are shared across
/// all cells: one JSONL stream and one Prometheus textfile cover the
/// whole matrix.
fn run_lifetime_cells(
    codes: &[muse_lifetime::FleetCode],
    envs: &[muse_lifetime::Environment],
    config: &muse_lifetime::FleetConfig,
    run: LifetimeRun,
) -> Result<(Vec<muse_lifetime::LifetimeReport>, Vec<String>), CliError> {
    let mut reports = Vec::with_capacity(codes.len() * envs.len());
    let mut banners = Vec::new();
    let tracer = match &run.trace {
        Some(path) => Some(
            muse_telemetry::Tracer::to_file(path, muse_telemetry::DEFAULT_CAPACITY)
                .map_err(|e| err(format!("--trace {}: {e}", path.display())))?,
        ),
        None => None,
    };
    let registry = (run.metrics.is_some() || run.progress).then(muse_telemetry::Metrics::new);
    for code in codes {
        for env in envs {
            if !run.sharded {
                reports.push(muse_lifetime::simulate_fleet(code, env, config));
                continue;
            }
            let runner = muse_lifetime::RunnerConfig {
                shards: run.shards,
                checkpoint_dir: run.checkpoint_dir.clone(),
                checkpoint_prefix: cell_prefix(code, env),
                resume: run.resume,
                stop_after_shards: run.crash_after,
                ..muse_lifetime::RunnerConfig::default()
            };
            let telemetry = muse_lifetime::FleetTelemetry {
                tracer: tracer.as_ref(),
                metrics: registry.as_ref(),
                metrics_path: run.metrics.clone(),
                label: muse_lifetime::cell_label(&code.name(), env.name),
                warn: Some(Box::new(|line: &str| eprintln!("{line}"))),
                heartbeat: run.progress.then(|| {
                    let f: Box<muse_lifetime::telemetry::HeartbeatFn<'_>> =
                        Box::new(|snap: &muse_telemetry::ProgressSnapshot| {
                            eprintln!("{}", snap.render());
                        });
                    f
                }),
            };
            let outcome = muse_lifetime::run_sharded_with(
                code,
                env,
                config,
                &runner,
                run.faults.as_ref(),
                &telemetry,
            )
            .map_err(|e| err(e.to_string()))?;
            let stats = outcome.stats();
            if let Some(info) = &stats.resume {
                banners.push(format!(
                    "resume: {} x {} — generation {}, {}/{} shards done, {:.1} machine-years \
                     covered{}",
                    code.name(),
                    env.name,
                    info.generation,
                    info.shards_done,
                    info.total_shards,
                    info.machine_years_done,
                    if info.fell_back {
                        " (newest checkpoint corrupt; fell back to previous generation)"
                    } else {
                        ""
                    },
                ));
            }
            match outcome {
                muse_lifetime::ShardedOutcome::Complete { report, .. } => reports.push(report),
                muse_lifetime::ShardedOutcome::Interrupted { stats } => {
                    return Err(err(format!(
                        "injected crash in cell {} x {} after {} shards ({} checkpoint writes); \
                         rerun with --resume to continue bit-identically",
                        code.name(),
                        env.name,
                        stats.shards_run,
                        stats.checkpoint_writes,
                    )));
                }
            }
        }
    }
    if let Some(tracer) = tracer {
        let path = run.trace.as_ref().expect("tracer implies --trace path");
        let summary = tracer.finish();
        banners.push(format!(
            "trace: {} events written, {} dropped ({})",
            summary.written,
            summary.dropped,
            path.display(),
        ));
    }
    if let (Some(registry), Some(path)) = (&registry, &run.metrics) {
        registry
            .write_textfile(path)
            .map_err(|e| err(format!("--metrics {}: {e}", path.display())))?;
        banners.push(format!(
            "metrics: Prometheus textfile at {}",
            path.display()
        ));
    }
    Ok((reports, banners))
}

/// Parses an `--inject` spec: comma-separated `key=value` pairs from
/// `kill=<prob>`, `crash-after=<shards>`,
/// `corrupt=<generation>:<truncate|bitflip>`, `delay=<ms>`,
/// `fault-seed=<seed>`, the watchdog keys `hang=<prob>` / `hang-ms=<ms>`,
/// and the I/O chaos keys `enospc`/`short-write`/`fsync-fail`/
/// `rename-fail`/`corrupt-record`/`sink-fail` (probabilities),
/// `sink-block-ms=<ms>`, and `io-seed=<seed>`.
fn parse_inject(spec: &str) -> Result<(muse_lifetime::FaultPlan, Option<u64>), CliError> {
    let mut plan = muse_lifetime::FaultPlan::default();
    let mut crash_after = None;
    for part in spec.split(',') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err(format!("--inject: {part:?} is not key=value")))?;
        let bad = |what: &str| err(format!("--inject {key}: cannot parse {what}"));
        match key {
            "kill" => plan.kill_prob = value.parse().map_err(|_| bad(value))?,
            "crash-after" => crash_after = Some(value.parse().map_err(|_| bad(value))?),
            "delay" => plan.delay_ms_max = value.parse().map_err(|_| bad(value))?,
            "fault-seed" => plan.seed = value.parse().map_err(|_| bad(value))?,
            "hang" => plan.hang_prob = value.parse().map_err(|_| bad(value))?,
            "hang-ms" => plan.hang_ms = value.parse().map_err(|_| bad(value))?,
            "corrupt" => {
                let (generation, kind) = value
                    .split_once(':')
                    .ok_or_else(|| err("--inject corrupt needs <generation>:<truncate|bitflip>"))?;
                let kind = match kind {
                    "truncate" => muse_lifetime::Corruption::Truncate,
                    "bitflip" => muse_lifetime::Corruption::BitFlip,
                    other => return Err(err(format!("--inject corrupt: unknown kind {other:?}"))),
                };
                plan.corrupt_generation =
                    Some((generation.parse().map_err(|_| bad(generation))?, kind));
            }
            "enospc" | "short-write" | "fsync-fail" | "rename-fail" | "corrupt-record"
            | "sink-fail" => {
                let p: f64 = value.parse().map_err(|_| bad(value))?;
                let io = plan
                    .io
                    .get_or_insert_with(muse_lifetime::IoFaultPlan::default);
                match key {
                    "enospc" => io.enospc_prob = p,
                    "short-write" => io.short_write_prob = p,
                    "fsync-fail" => io.fsync_fail_prob = p,
                    "rename-fail" => io.rename_fail_prob = p,
                    "corrupt-record" => io.corrupt_record_prob = p,
                    _ => io.sink_fail_prob = p,
                }
            }
            "sink-block-ms" => {
                plan.io
                    .get_or_insert_with(muse_lifetime::IoFaultPlan::default)
                    .sink_block_ms = value.parse().map_err(|_| bad(value))?;
            }
            "io-seed" => {
                plan.io
                    .get_or_insert_with(muse_lifetime::IoFaultPlan::default)
                    .seed = value.parse().map_err(|_| bad(value))?;
            }
            other => {
                return Err(err(format!(
                    "--inject: unknown key {other:?} (kill, crash-after, corrupt, delay, \
                     fault-seed, hang, hang-ms, enospc, short-write, fsync-fail, rename-fail, \
                     corrupt-record, sink-fail, sink-block-ms, io-seed)"
                )))
            }
        }
    }
    Ok((plan, crash_after))
}

fn parse_hex(s: &str) -> Result<Word, CliError> {
    let trimmed = s
        .strip_prefix("0x")
        .or_else(|| s.strip_prefix("0X"))
        .unwrap_or(s);
    Word::from_str_radix(trimmed, 16).map_err(|e| err(format!("bad hex {s:?}: {e}")))
}

fn flag_value<'a>(rest: &[&'a str], flag: &str) -> Result<Option<&'a str>, CliError> {
    match rest.iter().position(|&a| a == flag) {
        None => Ok(None),
        Some(i) => rest
            .get(i + 1)
            .copied()
            .map(Some)
            .ok_or_else(|| err(format!("{flag} needs a value"))),
    }
}

fn has_flag(rest: &[&str], flag: &str) -> bool {
    rest.contains(&flag)
}

fn require_parsed<T: std::str::FromStr>(rest: &[&str], flag: &str) -> Result<T, CliError> {
    let v = flag_value(rest, flag)?.ok_or_else(|| err(format!("{flag} is required")))?;
    v.parse()
        .map_err(|_| err(format!("{flag}: cannot parse {v:?}")))
}

fn parse_or<T: std::str::FromStr>(rest: &[&str], flag: &str, default: T) -> Result<T, CliError> {
    match flag_value(rest, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("{flag}: cannot parse {v:?}"))),
    }
}

/// `--estimator naive|is` plus `--bias <factor>`; `--bias` implies `is`,
/// and `is` without `--bias` defaults to a 16x rate inflation.
fn parse_estimator(rest: &[&str]) -> Result<muse_lifetime::Estimator, CliError> {
    let bias: Option<f64> = match flag_value(rest, "--bias")? {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| err(format!("--bias: cannot parse {v:?}")))?,
        ),
    };
    match (flag_value(rest, "--estimator")?, bias) {
        (None, None) | (Some("naive"), None) => Ok(muse_lifetime::Estimator::Naive),
        (Some("naive"), Some(_)) => Err(err(
            "--bias only applies to importance sampling (--estimator is)",
        )),
        (Some("is"), bias) | (None, bias @ Some(_)) => {
            let factor = bias.unwrap_or(16.0);
            if !factor.is_finite() || factor < 1.0 {
                return Err(err(format!(
                    "--bias: factor must be finite and >= 1, got {factor}"
                )));
            }
            Ok(muse_lifetime::Estimator::importance(factor))
        }
        (Some(other), _) => Err(err(format!(
            "--estimator: unknown estimator {other:?} (expected naive or is)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(line: &str) -> Result<String, CliError> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        run(&args)
    }

    #[test]
    fn help_and_presets() {
        assert!(run_str("help").unwrap().contains("USAGE"));
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run_str("presets").unwrap().contains("muse80_69"));
    }

    #[test]
    fn inspect_shows_parameters() {
        let out = run_str("inspect muse80_69").unwrap();
        assert!(out.contains("MUSE(80,69)"));
        assert!(out.contains("2005"));
        assert!(out.contains("C4B"));
        assert!(run_str("inspect nope").is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let cw = run_str("encode muse80_69 0xDEADBEEF --meta 0x1F").unwrap();
        let out = run_str(&format!("decode muse80_69 {cw}")).unwrap();
        assert!(out.starts_with("clean:"), "{out}");

        // Corrupt one device and decode again.
        let word = parse_hex(&cw).unwrap();
        let code = preset("muse80_69").unwrap();
        let corrupted = word ^ *code.symbol_map().mask(7);
        let out = run_str(&format!("decode muse80_69 {corrupted:#x}")).unwrap();
        assert!(out.starts_with("corrected device 7"), "{out}");
    }

    #[test]
    fn decode_flags_uncorrectable() {
        let cw = run_str("encode muse80_69 0x1").unwrap();
        let word = parse_hex(&cw).unwrap();
        let code = preset("muse80_69").unwrap();
        let corrupted = word ^ *code.symbol_map().mask(1) ^ *code.symbol_map().mask(9);
        let out = run_str(&format!("decode muse80_69 {corrupted:#x}")).unwrap();
        assert!(out.contains("UNCORRECTABLE"), "{out}");
    }

    #[test]
    fn search_finds_table1_values() {
        let out = run_str("search --bits 80 --symbol 4 --redundancy 11").unwrap();
        assert!(out.contains("2005"), "{out}");
        let out = run_str("search --bits 80 --symbol 8 --redundancy 13 --asym").unwrap();
        assert!(out.contains("no valid"), "{out}");
        let out =
            run_str("search --bits 80 --symbol 8 --redundancy 13 --asym --interleaved").unwrap();
        assert!(out.contains("5621"), "{out}");
    }

    #[test]
    fn msed_reports_rate() {
        let out = run_str("msed muse80_69 --trials 500").unwrap();
        assert!(out.contains("% of 500 2-device errors detected"), "{out}");
    }

    #[test]
    fn rsmsed_covers_both_t_values() {
        let out = run_str("rsmsed --trials 400").unwrap();
        assert!(out.contains("RS(144,128) t=1"), "{out}");
        let out = run_str("rsmsed --t 2 --trials 400").unwrap();
        assert!(out.contains("RS(144,112) t=2"), "{out}");
        // x8 devices nest whole symbols: every 2-device error is in-model
        // for t = 2 and corrects.
        let out = run_str("rsmsed --t 2 --device-bits 8 --trials 300").unwrap();
        assert!(out.contains("(300 corrected"), "{out}");
        // An x8 device straddling three 5-bit symbols folds correctly too.
        let out = run_str("rsmsed --t 2 --symbol-bits 5 --device-bits 8 --trials 300").unwrap();
        assert!(out.contains("RS(144,124) t=2"), "{out}");
        assert!(run_str("rsmsed --t 3").is_err());
        assert!(run_str("rsmsed --device-bits 0").is_err());
    }

    #[test]
    fn lifetime_reports_matrix() {
        // A tiny fleet keeps the test fast; the matrix still covers all
        // 4 codes x 5 environments (3 synthetic + 2 field-calibrated).
        let out = run_str("lifetime --dimms 24 --years 1 --scrub-hours 48").unwrap();
        assert!(out.contains("MUSE(144,132)"), "{out}");
        assert!(out.contains("RS(144,112) t=2"), "{out}");
        assert!(out.contains("transient-dominant"), "{out}");
        assert!(out.contains("retention-asymmetric"), "{out}");
        assert_eq!(out.matches("chipkill-heavy").count(), 4);
        assert_eq!(out.matches("field-ddr3").count(), 4);
        assert_eq!(out.matches("field-ddr4").count(), 4);
        assert!(out.contains("estimator naive"), "{out}");
        // Deterministic across thread counts.
        let serial = run_str("lifetime --dimms 24 --years 1 --scrub-hours 48 --threads 1").unwrap();
        assert_eq!(
            out.replace("--threads", ""),
            serial.replace("--threads", ""),
            "thread count must not change the rates"
        );
        assert!(run_str("lifetime --dimms zzz").is_err());
    }

    #[test]
    fn lifetime_zero_events_render_as_upper_bounds() {
        // Regression pin for the silent-zero bug: a fleet too small to
        // observe any SDC must print the rule-of-three bound, not 0.000000.
        let out = run_str("lifetime --dimms 8 --years 1 --scrub-hours 48").unwrap();
        assert!(out.contains("@95%"), "rule-of-three bound missing: {out}");
        assert!(
            !out.contains("0.00000 "),
            "bare zero rate leaked through: {out}"
        );
        // The exact formatted shape: `<` glued to a scientific-notation
        // bound — 3 / machine-years, here exactly 1 machine-year.
        assert!(out.contains("<3.00e0 @95%"), "{out}");
    }

    #[test]
    fn lifetime_importance_sampling_quotes_cis() {
        let base = "lifetime --dimms 24 --years 1 --scrub-hours 48";
        let out = run_str(&format!("{base} --estimator is --bias 8")).unwrap();
        assert!(out.contains("estimator is bias=8"), "{out}");
        assert!(out.contains("["), "no CI bracket in IS output: {out}");
        // --bias alone implies importance sampling.
        let implied = run_str(&format!("{base} --bias 8")).unwrap();
        assert_eq!(out, implied);
        // is without --bias picks the default inflation.
        let default = run_str(&format!("{base} --estimator is")).unwrap();
        assert!(default.contains("estimator is bias=16"), "{default}");
        // Bad estimator configs are rejected up front.
        assert!(run_str(&format!("{base} --estimator zzz")).is_err());
        assert!(run_str(&format!("{base} --estimator naive --bias 4")).is_err());
        assert!(run_str(&format!("{base} --bias 0.5")).is_err());
        assert!(run_str(&format!("{base} --bias nan")).is_err());
    }

    #[test]
    fn lifetime_smoke_checks_the_pins() {
        let out = run_str("lifetime --smoke").unwrap();
        assert!(
            out.contains("smoke tallies match the pins for all 4 codes"),
            "{out}"
        );
    }

    #[test]
    fn lifetime_crash_resume_cycle() {
        let dir = std::env::temp_dir().join(format!("muse-cli-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let base = format!(
            "lifetime --smoke --checkpoint-dir {} --shards 4",
            dir.display()
        );
        // Injected crash after one shard: nonzero exit, checkpoint on disk.
        let crashed = run_str(&format!("{base} --inject crash-after=1")).unwrap_err();
        assert!(crashed.0.contains("injected crash"), "{crashed}");
        assert!(crashed.0.contains("--resume"), "{crashed}");
        // Resume completes, prints the banner, and still matches the pins.
        let out = run_str(&format!("{base} --resume")).unwrap();
        assert!(out.contains("resume: MUSE(144,132) x smoke"), "{out}");
        assert!(out.contains("1/4 shards done"), "{out}");
        assert!(out.contains("machine-years covered"), "{out}");
        assert!(
            out.contains("smoke tallies match the pins for all 4 codes"),
            "{out}"
        );
        // Resuming under a different seed is refused with a clear message.
        run_str(&format!("{base} --inject crash-after=1")).unwrap_err();
        let mismatch = run_str(&format!("{base} --resume --seed 1")).unwrap_err();
        assert!(mismatch.0.contains("config-hash mismatch"), "{mismatch}");
        assert!(mismatch.0.contains("refusing to resume"), "{mismatch}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lifetime_telemetry_flags_emit_artifacts() {
        let dir = std::env::temp_dir().join(format!("muse-cli-telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let metrics = dir.join("metrics.prom");
        let out = run_str(&format!(
            "lifetime --smoke --trace {} --metrics {}",
            trace.display(),
            metrics.display()
        ))
        .unwrap();
        // Telemetry must not perturb the pinned tallies.
        assert!(
            out.contains("smoke tallies match the pins for all 4 codes"),
            "{out}"
        );
        // Banners report the artifacts and a greppable drop count.
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("0 dropped"), "{out}");
        assert!(out.contains("metrics: Prometheus textfile"), "{out}");
        // Every JSONL line parses as a schema-valid muse-trace/v1 event,
        // and the stream is bracketed by run_start/run_end per cell.
        let body = std::fs::read_to_string(&trace).unwrap();
        let mut kinds = Vec::new();
        for line in body.lines() {
            let (_seq, event) = muse_telemetry::TraceEvent::parse_line(line).unwrap();
            kinds.push(event.kind());
        }
        assert_eq!(kinds.iter().filter(|k| **k == "run_start").count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == "run_end").count(), 4);
        assert!(kinds.contains(&"shard_start"), "{kinds:?}");
        assert!(kinds.contains(&"heartbeat"), "{kinds:?}");
        // The Prometheus textfile carries the core instruments.
        let prom = std::fs::read_to_string(&metrics).unwrap();
        assert!(prom.contains("# TYPE muse_lifetime_shards_completed_total counter"));
        assert!(prom.contains("muse_sim_trials_total"));
        assert!(prom.contains("muse_lifetime_shard_wall_ms_bucket"));
        // A bad trace path fails fast instead of running the matrix.
        assert!(run_str("lifetime --smoke --trace /nonexistent-dir/t.jsonl").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lifetime_inject_spec_is_validated() {
        assert!(run_str("lifetime --smoke --inject kill=zzz").is_err());
        assert!(run_str("lifetime --smoke --inject crash-after").is_err());
        assert!(run_str("lifetime --smoke --inject corrupt=3").is_err());
        assert!(run_str("lifetime --smoke --inject corrupt=3:melt").is_err());
        assert!(run_str("lifetime --smoke --inject nope=1").is_err());
    }

    #[test]
    fn service_spool_cycle() {
        let root = std::env::temp_dir().join(format!("muse-cli-spool-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let base = format!("--root {}", root.display());
        // Submit the four smoke cells; a second submit is deduplicated.
        let out = run_str(&format!("submit {base} --smoke --shards 4")).unwrap();
        assert_eq!(out.matches("submitted").count(), 4, "{out}");
        let dup = run_str(&format!("submit {base} --smoke --shards 4")).unwrap();
        assert_eq!(dup.matches("duplicate").count(), 4, "{dup}");
        let status = run_str(&format!("status {base}")).unwrap();
        assert!(status.contains("queued: 4"), "{status}");
        // Drain the queue once: all four compute (cache is cold).
        let out = run_str(&format!("serve {base} --once")).unwrap();
        assert!(out.contains("4 job(s) completed (0 from cache)"), "{out}");
        let status = run_str(&format!("status {base}")).unwrap();
        assert!(status.contains("done: 4"), "{status}");
        assert!(status.contains("queued: 0"), "{status}");
        // The results match the pinned smoke tallies.
        let check = run_str(&format!("smoke-check {base}")).unwrap();
        assert!(check.contains("match the pins for all 4 codes"), "{check}");
        // `result` prints the schema-tagged JSON for a known id.
        let id = muse_service::JobSpec {
            code: "muse144_132".into(),
            env: "smoke".into(),
            smoke: true,
            ..muse_service::JobSpec::default()
        }
        .job_id()
        .unwrap();
        let json = run_str(&format!("result {id} {base}")).unwrap();
        assert!(json.contains("muse-result/v1"), "{json}");
        assert!(json.contains("\"cache_hit\":false"), "{json}");
        // Re-submit and serve again: every job is a cache hit.
        run_str(&format!("submit {base} --smoke --shards 4")).unwrap();
        let out = run_str(&format!("serve {base} --once")).unwrap();
        assert!(out.contains("4 job(s) completed (4 from cache)"), "{out}");
        let json = run_str(&format!("result {id} {base}")).unwrap();
        assert!(json.contains("\"cache_hit\":true"), "{json}");
        // A garbage job fails loudly: nonzero exit, evidence in failed/.
        std::fs::write(root.join("queue/deadbeef.job"), "not json").unwrap();
        let failure = run_str(&format!("serve {base} --once")).unwrap_err();
        assert!(failure.0.contains("1 failed"), "{failure}");
        assert!(failure.0.contains("failed/"), "{failure}");
        let status = run_str(&format!("status {base}")).unwrap();
        assert!(status.contains("failed: 1"), "{status}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn service_flags_are_validated() {
        assert!(run_str("serve --watchdog-ms zzz").is_err());
        assert!(run_str("result").is_err());
        assert!(run_str("submit --code bogus --root /tmp/muse-cli-bad-spool").is_err());
        assert!(run_str("serve --once --inject sink-fail=zzz").is_err());
        let _ = std::fs::remove_dir_all("/tmp/muse-cli-bad-spool");
    }

    #[test]
    fn verilog_and_spec_subcommands() {
        let v = run_str("verilog muse80_69").unwrap();
        assert!(v.contains("module muse_80_69_enc"));
        let v = run_str("verilog muse80_69 --syndrome-only").unwrap();
        assert!(v.contains("remainder"));
        assert!(!v.contains("_enc ("));
        let v = run_str("verilog muse80_69 --corrector").unwrap();
        assert!(v.contains("uncorrectable"));
        assert_eq!(v.matches(": begin err_val").count(), 600); // 20 devices x 30
        let s = run_str("spec muse80_67").unwrap();
        assert!(s.contains("multiplier 5621"));
        // The printed spec loads back into an identical code.
        let code = muse_core::MuseCode::from_spec_string(&s).unwrap();
        assert_eq!(code.multiplier(), 5621);
    }

    #[test]
    fn error_paths() {
        assert!(run_str("encode muse80_69").is_err());
        assert!(run_str("encode muse80_69 zzz").is_err());
        assert!(run_str("decode muse80_69").is_err());
        assert!(run_str("search --symbol 4").is_err()); // --bits required
        assert!(run_str("bogus").is_err());
        // Oversized inputs rejected.
        let too_wide = format!("decode muse80_69 0x{}", "f".repeat(30));
        assert!(run_str(&too_wide).is_err());
    }
}
