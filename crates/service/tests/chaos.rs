//! The chaos sweep: every fault class the service threads an
//! [`IoFaultPlan`] (or [`FaultPlan`]) through, swept against one pinned
//! baseline tally.
//!
//! The invariant under test, for every class — injected kills, shard
//! hangs (watchdog), ENOSPC, torn writes, fsync and rename failures,
//! cache-record corruption, blocked/failing telemetry sinks, and a
//! mid-run drain-and-restart: **the job either completes with tallies
//! bit-identical to an unperturbed [`simulate_fleet`], or fails loudly
//! with resumable state in the spool — never wrong numbers, never a
//! hang.**

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use muse_lifetime::{simulate_fleet, FaultPlan, IoFaultPlan, LifetimeTally};
use muse_service::{
    serve, JobResult, JobSpec, ServiceConfig, ServiceReport, ServiceTelemetry, Spool,
};

/// The swept job: small enough to run in milliseconds, sharded enough
/// that checkpoints, retries, and drains all have boundaries to land on.
fn chaos_spec() -> JobSpec {
    JobSpec {
        code: "muse80_69".to_string(),
        env: "transient-dominant".to_string(),
        dimms: 24,
        years: 0.5,
        scrub_hours: 24.0,
        seed: 0xC4A05,
        shards: 4,
        ..JobSpec::default()
    }
}

/// The unperturbed truth every chaos run must reproduce bit-for-bit.
fn baseline() -> LifetimeTally {
    let (code, env, config) = chaos_spec().resolve().unwrap();
    simulate_fleet(&code, &env, &config).tally
}

struct Harness {
    root: PathBuf,
    spool: Spool,
    warns: Arc<Mutex<Vec<String>>>,
}

impl Harness {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("muse-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spool = Spool::open(&root).unwrap();
        Self {
            root,
            spool,
            warns: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn submit(&self) -> String {
        let (id, _) = self.spool.submit(&chaos_spec()).unwrap();
        id
    }

    fn config(&self, faults: Option<FaultPlan>) -> ServiceConfig {
        ServiceConfig {
            root: self.root.clone(),
            once: true,
            max_retries: 10,
            backoff_base_ms: 0,
            faults,
            ..ServiceConfig::default()
        }
    }

    fn serve(&self, config: &ServiceConfig) -> ServiceReport {
        let warns = Arc::clone(&self.warns);
        let telemetry = ServiceTelemetry {
            warn: Some(Box::new(move |line: &str| {
                warns.lock().unwrap().push(line.to_string())
            })),
            ..ServiceTelemetry::default()
        };
        serve(config, &telemetry).unwrap()
    }

    fn warned(&self, needle: &str) -> bool {
        self.warns
            .lock()
            .unwrap()
            .iter()
            .any(|w| w.contains(needle))
    }

    fn result(&self, id: &str) -> JobResult {
        JobResult::from_json(&self.spool.result_json(id).unwrap()).unwrap()
    }

    fn failed_error(&self, id: &str) -> String {
        std::fs::read_to_string(self.spool.failed_dir().join(format!("{id}.err"))).unwrap()
    }

    /// Moves a failed job back into the queue (the operator's retry).
    fn requeue_failed(&self, id: &str) {
        std::fs::rename(
            self.spool.failed_dir().join(format!("{id}.job")),
            self.spool.queue_dir().join(format!("{id}.job")),
        )
        .unwrap();
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn io_plan() -> IoFaultPlan {
    IoFaultPlan::default()
}

#[test]
fn injected_kills_retry_to_a_bit_identical_result() {
    let h = Harness::new("kill");
    let id = h.submit();
    let report = h.serve(&h.config(Some(FaultPlan {
        kill_prob: 0.4,
        ..FaultPlan::default()
    })));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
}

#[test]
fn hung_shards_are_watchdog_killed_and_recomputed_bit_identically() {
    let h = Harness::new("hang");
    let id = h.submit();
    let mut config = h.config(Some(FaultPlan {
        hang_prob: 0.75,
        hang_ms: 150,
        ..FaultPlan::default()
    }));
    config.watchdog_ms = Some(25);
    config.max_retries = 20;
    let report = h.serve(&config);
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    let result = h.result(&id);
    assert_eq!(result.tally, baseline());
    assert!(
        result.watchdog_kills > 0,
        "hang_prob 0.75 over 4 shards produced no kills: {result:?}"
    );
    assert!(
        h.warned("watchdog timeout"),
        "{:?}",
        h.warns.lock().unwrap()
    );
}

#[test]
fn permanently_hung_shards_fail_loudly_instead_of_hanging_the_daemon() {
    let h = Harness::new("hang-exhaust");
    let id = h.submit();
    let mut config = h.config(Some(FaultPlan {
        hang_prob: 1.0,
        hang_ms: 200,
        ..FaultPlan::default()
    }));
    config.watchdog_ms = Some(20);
    config.max_retries = 1;
    let report = h.serve(&config);
    assert_eq!(report.jobs_failed, 1, "{report:?}");
    assert!(
        h.failed_error(&id).contains("attempts"),
        "loud failure text"
    );
    // The operator's retry without the hang completes bit-identically.
    h.requeue_failed(&id);
    let report = h.serve(&h.config(None));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
}

#[test]
fn enospc_fsync_and_rename_failures_fail_loudly_then_recover() {
    for (tag, plan) in [
        (
            "enospc",
            IoFaultPlan {
                enospc_prob: 1.0,
                ..io_plan()
            },
        ),
        (
            "fsync",
            IoFaultPlan {
                fsync_fail_prob: 1.0,
                ..io_plan()
            },
        ),
        (
            "rename",
            IoFaultPlan {
                rename_fail_prob: 1.0,
                ..io_plan()
            },
        ),
    ] {
        let h = Harness::new(tag);
        let id = h.submit();
        let report = h.serve(&h.config(Some(FaultPlan {
            io: Some(plan),
            ..FaultPlan::default()
        })));
        // The first checkpoint save fails => the job fails loudly with
        // the injected error preserved as evidence.
        assert_eq!(report.jobs_failed, 1, "{tag}: {report:?}");
        assert!(
            h.failed_error(&id).contains("injected"),
            "{tag}: {}",
            h.failed_error(&id)
        );
        // A retry on a healthy disk completes bit-identically.
        h.requeue_failed(&id);
        let report = h.serve(&h.config(None));
        assert_eq!(report.jobs_completed, 1, "{tag}: {report:?}");
        assert_eq!(h.result(&id).tally, baseline(), "{tag}");
    }
}

#[test]
fn torn_writes_complete_bit_identically_and_never_poison_the_cache() {
    let h = Harness::new("torn");
    let id = h.submit();
    // Every checkpoint and cache write is torn in half. The in-memory
    // run is unaffected — the job completes with exact tallies; the torn
    // cache record is caught by its CRC on the next lookup.
    let faults = Some(FaultPlan {
        io: Some(IoFaultPlan {
            short_write_prob: 1.0,
            ..io_plan()
        }),
        ..FaultPlan::default()
    });
    let report = h.serve(&h.config(faults));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
    // Resubmit: the torn record must read as corrupt (a recompute), not
    // as a hit and never as wrong numbers.
    h.spool.submit(&chaos_spec()).unwrap();
    let report = h.serve(&h.config(None));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(report.cache_hits, 0, "torn record must not hit");
    assert_eq!(report.cache_corrupt, 1, "{report:?}");
    assert!(h.warned("CRC/config-hash fence"));
    assert_eq!(h.result(&id).tally, baseline());
    // Third time: the healthy rewrite serves from cache.
    h.spool.submit(&chaos_spec()).unwrap();
    let report = h.serve(&h.config(None));
    assert_eq!(report.cache_hits, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
}

#[test]
fn cache_record_rot_is_detected_and_recomputed_bit_identically() {
    let h = Harness::new("rot");
    let id = h.submit();
    let faults = Some(FaultPlan {
        io: Some(IoFaultPlan {
            corrupt_record_prob: 1.0,
            ..io_plan()
        }),
        ..FaultPlan::default()
    });
    let report = h.serve(&h.config(faults.clone()));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
    // The committed record was bit-flipped after the rename: the next
    // serve detects it and recomputes — same numbers, never the rotten
    // record's.
    h.spool.submit(&chaos_spec()).unwrap();
    let report = h.serve(&h.config(faults));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(report.cache_hits, 0);
    assert_eq!(report.cache_corrupt, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
}

#[test]
fn blocked_and_failing_telemetry_sinks_never_touch_the_tallies() {
    let h = Harness::new("sink");
    let id = h.submit();
    // A sink that blocks 1ms per write and fails half the time, wrapped
    // around a black hole — the worst telemetry backend imaginable.
    let sink = IoFaultPlan {
        sink_fail_prob: 0.5,
        sink_block_ms: 1,
        ..io_plan()
    }
    .wrap_sink(Box::new(std::io::sink()));
    let tracer = muse_telemetry::Tracer::new(sink, 16);
    let metrics = muse_telemetry::Metrics::new();
    let telemetry = ServiceTelemetry {
        metrics: Some(&metrics),
        metrics_path: Some(h.root.join("metrics.prom")),
        tracer: Some(&tracer),
        warn: None,
    };
    let report = serve(&h.config(None), &telemetry).unwrap();
    drop(telemetry);
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert_eq!(h.result(&id).tally, baseline());
    // Full accounting: every emitted event is written, dropped, or a
    // counted sink error — nothing vanishes silently.
    let summary = tracer.finish();
    assert!(summary.io_errors > 0, "sink_fail 0.5 counted no errors");
    assert_eq!(
        summary.emitted,
        summary.written + summary.dropped + summary.io_errors,
        "{summary:?}"
    );
    assert_eq!(
        metrics
            .counter("muse_service_jobs_completed_total", "")
            .get(),
        1
    );
}

#[test]
fn drain_mid_run_checkpoints_and_restart_resumes_bit_identically() {
    let h = Harness::new("drain");
    let id = h.submit();
    // Slow each shard down so the drain lands mid-run, then trip the
    // flag from another thread — exactly what the SIGTERM handler does.
    let config = h.config(Some(FaultPlan {
        delay_ms_max: 60,
        ..FaultPlan::default()
    }));
    let drain = Arc::clone(&config.drain);
    let trip = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        drain.store(true, Ordering::Relaxed);
    });
    let report = h.serve(&config);
    trip.join().unwrap();
    assert!(report.drained, "{report:?}");
    assert_eq!(report.jobs_completed, 0, "{report:?}");
    assert_eq!(report.jobs_failed, 0, "drain is not a failure: {report:?}");
    // The job went back to the queue with its checkpoints persisted.
    let status = h.spool.status().unwrap();
    assert_eq!((status.queued, status.active), (1, 0), "{status:?}");
    // A fresh daemon (drain flag clear) adopts and completes; the
    // resumed tallies are bit-identical to the never-interrupted run.
    let report = h.serve(&h.config(None));
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert!(h.warned("drain: job"), "{:?}", h.warns.lock().unwrap());
    assert_eq!(h.result(&id).tally, baseline());
}
