//! End-to-end spool semantics: submission idempotence, orphan adoption,
//! the job-id fence, and cross-config cache fencing.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use muse_lifetime::simulate_fleet;
use muse_service::{
    serve, JobResult, JobSpec, ServiceConfig, ServiceReport, ServiceTelemetry, Spool,
};

fn small_spec(seed: u64) -> JobSpec {
    JobSpec {
        code: "muse80_69".to_string(),
        env: "chipkill-heavy".to_string(),
        dimms: 16,
        years: 0.5,
        scrub_hours: 24.0,
        seed,
        shards: 2,
        ..JobSpec::default()
    }
}

struct Harness {
    root: PathBuf,
    spool: Spool,
    warns: Arc<Mutex<Vec<String>>>,
}

impl Harness {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("muse-service-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let spool = Spool::open(&root).unwrap();
        Self {
            root,
            spool,
            warns: Arc::new(Mutex::new(Vec::new())),
        }
    }

    fn serve_once(&self) -> ServiceReport {
        let config = ServiceConfig {
            root: self.root.clone(),
            once: true,
            backoff_base_ms: 0,
            ..ServiceConfig::default()
        };
        let warns = Arc::clone(&self.warns);
        let telemetry = ServiceTelemetry {
            warn: Some(Box::new(move |line: &str| {
                warns.lock().unwrap().push(line.to_string())
            })),
            ..ServiceTelemetry::default()
        };
        serve(&config, &telemetry).unwrap()
    }

    fn warned(&self, needle: &str) -> bool {
        self.warns
            .lock()
            .unwrap()
            .iter()
            .any(|w| w.contains(needle))
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn submission_is_idempotent_and_status_tracks_stages() {
    let h = Harness::new("idempotent");
    let (id, enqueued) = h.spool.submit(&small_spec(1)).unwrap();
    assert!(enqueued);
    // Same config resubmitted: same id, silently deduplicated.
    let (id2, enqueued) = h.spool.submit(&small_spec(1)).unwrap();
    assert_eq!(id, id2);
    assert!(!enqueued);
    // A different seed is a different configuration — its own id.
    let (id3, enqueued) = h.spool.submit(&small_spec(2)).unwrap();
    assert_ne!(id, id3);
    assert!(enqueued);
    let status = h.spool.status().unwrap();
    assert_eq!((status.queued, status.done), (2, 0), "{status:?}");
    let report = h.serve_once();
    assert_eq!(report.jobs_completed, 2, "{report:?}");
    let status = h.spool.status().unwrap();
    assert_eq!((status.queued, status.done), (0, 2), "{status:?}");
    // Each id's result is fenced to its own configuration: the two runs
    // differ only by seed, and their tallies must be their own.
    let r1 = JobResult::from_json(&h.spool.result_json(&id).unwrap()).unwrap();
    let r3 = JobResult::from_json(&h.spool.result_json(&id3).unwrap()).unwrap();
    let (c1, e1, f1) = small_spec(1).resolve().unwrap();
    let (c3, e3, f3) = small_spec(2).resolve().unwrap();
    assert_eq!(r1.tally, simulate_fleet(&c1, &e1, &f1).tally);
    assert_eq!(r3.tally, simulate_fleet(&c3, &e3, &f3).tally);
    assert_ne!(r1.tally, r3.tally, "distinct seeds must not share tallies");
}

#[test]
fn startup_adopts_orphans_left_by_a_dead_daemon() {
    let h = Harness::new("orphans");
    // Simulate a daemon that died mid-claim: the job sits in active/.
    let spec = small_spec(7);
    let id = spec.job_id().unwrap();
    std::fs::write(
        h.spool.active_dir().join(format!("{id}.job")),
        spec.to_json(),
    )
    .unwrap();
    let report = h.serve_once();
    assert_eq!(report.adopted, 1, "{report:?}");
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert!(h.warned("resume: adopted"), "{:?}", h.warns.lock().unwrap());
    let (code, env, config) = spec.resolve().unwrap();
    let result = JobResult::from_json(&h.spool.result_json(&id).unwrap()).unwrap();
    assert_eq!(result.tally, simulate_fleet(&code, &env, &config).tally);
}

#[test]
fn the_job_id_fence_rejects_misnamed_job_files() {
    let h = Harness::new("fence");
    let (id, _) = h.spool.submit(&small_spec(3)).unwrap();
    // An operator (or a bug) renames the job onto a different id: the
    // spec inside hashes to the original, and the daemon refuses to run
    // it under the wrong identity.
    let wrong = "f".repeat(16);
    std::fs::rename(
        h.spool.queue_dir().join(format!("{id}.job")),
        h.spool.queue_dir().join(format!("{wrong}.job")),
    )
    .unwrap();
    let report = h.serve_once();
    assert_eq!(report.jobs_failed, 1, "{report:?}");
    let error = std::fs::read_to_string(h.spool.failed_dir().join(format!("{wrong}.err"))).unwrap();
    assert!(error.contains("job id mismatch"), "{error}");
    assert!(error.contains(&id), "error names the real id: {error}");
}

#[test]
fn completed_jobs_clean_up_their_checkpoints_and_serve_from_cache() {
    let h = Harness::new("cleanup");
    let (id, _) = h.spool.submit(&small_spec(9)).unwrap();
    let report = h.serve_once();
    assert_eq!(report.jobs_completed, 1, "{report:?}");
    assert!(
        !h.spool.checkpoint_dir(&id).exists(),
        "checkpoints must not outlive a completed job"
    );
    assert!(h.spool.cache_dir().join(format!("{id}.res")).exists());
    // The rerun never recomputes: zero shards run, cache hit recorded.
    h.spool.submit(&small_spec(9)).unwrap();
    let report = h.serve_once();
    assert_eq!(
        (report.jobs_completed, report.cache_hits),
        (1, 1),
        "{report:?}"
    );
    let result = JobResult::from_json(&h.spool.result_json(&id).unwrap()).unwrap();
    assert!(result.cache_hit);
    assert_eq!(result.shards_run, 0, "cache hits must not recompute");
}
