//! Job specifications: the `muse-job/v1` JSON schema and its resolution
//! into a concrete `(FleetCode, Environment, FleetConfig)` triple.
//!
//! A job is one lifetime run: which code, which fault environment, how
//! many DIMMs over how many years, which estimator. The job **id** is
//! the 16-hex [`config_hash`] of the resolved triple, so identical
//! configurations collapse to one spool entry and one cache record by
//! construction — the same fencing the checkpoint format uses.

use muse_lifetime::{
    all_environments, config_hash, smoke_setup, Environment, Estimator, FleetCode, FleetConfig,
};
use muse_rs::RsMemoryCode;
use muse_telemetry::{parse_object, JsonBuilder};

/// Schema tag of every job file.
pub const JOB_SCHEMA: &str = "muse-job/v1";

/// One lifetime-run job, as submitted. Serialized as a flat
/// `muse-job/v1` JSON object (one line).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Code registry name: `muse144_132`, `muse80_69`, `muse80_67`,
    /// `muse80_70`, `muse268_256`, `muse144_128`, `rs144_128_t1`,
    /// `rs144_112_t2`.
    pub code: String,
    /// Environment name (see
    /// [`all_environments`]), or `smoke`.
    pub env: String,
    /// Use the canonical [`smoke_setup`] fleet configuration (pinned
    /// tallies), ignoring the numeric fields below.
    pub smoke: bool,
    /// Fleet size in DIMMs.
    pub dimms: u64,
    /// Horizon in years.
    pub years: f64,
    /// Scrub interval in hours.
    pub scrub_hours: f64,
    /// Chip spares per DIMM.
    pub spares: u32,
    /// PRNG seed.
    pub seed: u64,
    /// Estimator: `naive` or `importance`.
    pub estimator: String,
    /// Importance-sampling bias (ignored for `naive`).
    pub bias: f64,
    /// Supervisor shard count (`0` ⇒ default plan).
    pub shards: u32,
    /// Worker threads (`0` ⇒ one per CPU; excluded from the job id).
    pub threads: usize,
}

impl Default for JobSpec {
    fn default() -> Self {
        let d = FleetConfig::default();
        Self {
            code: "muse144_132".to_string(),
            env: "transient-dominant".to_string(),
            smoke: false,
            dimms: d.dimms,
            years: d.years,
            scrub_hours: d.scrub_interval_hours,
            spares: d.spares_per_dimm,
            seed: d.seed,
            estimator: "naive".to_string(),
            bias: 1.0,
            shards: 0,
            threads: 0,
        }
    }
}

impl JobSpec {
    /// Serializes to one `muse-job/v1` JSON line.
    pub fn to_json(&self) -> String {
        let mut b = JsonBuilder::new();
        b.str("schema", JOB_SCHEMA)
            .str("code", &self.code)
            .str("env", &self.env)
            .bool("smoke", self.smoke)
            .u64("dimms", self.dimms)
            .f64("years", self.years)
            .f64("scrub_hours", self.scrub_hours)
            .u64("spares", u64::from(self.spares))
            .u64("seed", self.seed)
            .str("estimator", &self.estimator)
            .f64("bias", self.bias)
            .u64("shards", u64::from(self.shards))
            .u64("threads", self.threads as u64);
        b.finish()
    }

    /// Parses a `muse-job/v1` JSON line.
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field; a wrong
    /// `schema` tag is rejected outright.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let obj = parse_object(line).map_err(|e| format!("job spec: {e}"))?;
        let schema = obj.str("schema").map_err(|e| format!("job spec: {e}"))?;
        if schema != JOB_SCHEMA {
            return Err(format!(
                "job spec: schema mismatch: expected {JOB_SCHEMA:?}, got {schema:?}"
            ));
        }
        let get = |e: muse_telemetry::JsonError| format!("job spec: {e}");
        Ok(Self {
            code: obj.str("code").map_err(get)?.to_string(),
            env: obj.str("env").map_err(get)?.to_string(),
            smoke: obj.bool("smoke").map_err(get)?,
            dimms: obj.u64("dimms").map_err(get)?,
            years: obj.f64("years").map_err(get)?,
            scrub_hours: obj.f64("scrub_hours").map_err(get)?,
            spares: obj.u32("spares").map_err(get)?,
            seed: obj.u64("seed").map_err(get)?,
            estimator: obj.str("estimator").map_err(get)?.to_string(),
            bias: obj.f64("bias").map_err(get)?,
            shards: obj.u32("shards").map_err(get)?,
            threads: obj.u64("threads").map_err(get)? as usize,
        })
    }

    /// Resolves the registry names into the concrete run triple.
    ///
    /// # Errors
    ///
    /// Unknown code/environment/estimator names, or invalid parameter
    /// combinations (zero DIMMs, non-positive horizon).
    pub fn resolve(&self) -> Result<(FleetCode, Environment, FleetConfig), String> {
        let code = resolve_code(&self.code)?;
        if self.smoke {
            // The canonical smoke setup is pinned end to end; the job's
            // numeric fields are deliberately ignored so `smoke` can
            // never drift from the tallies CI compares against.
            let (env, config) = smoke_setup();
            return Ok((code, env, config));
        }
        let env = resolve_env(&self.env)?;
        let estimator = match self.estimator.as_str() {
            "naive" => Estimator::Naive,
            "importance" | "is" => Estimator::importance(self.bias),
            other => return Err(format!("unknown estimator {other:?} (naive|importance)")),
        };
        if self.dimms == 0 {
            return Err("dimms must be positive".to_string());
        }
        let positive = |x: f64| x > 0.0 && x.is_finite();
        if !positive(self.years) || !positive(self.scrub_hours) {
            return Err("years and scrub_hours must be positive".to_string());
        }
        let config = FleetConfig {
            dimms: self.dimms,
            years: self.years,
            scrub_interval_hours: self.scrub_hours,
            spares_per_dimm: self.spares,
            seed: self.seed,
            threads: self.threads,
            estimator,
            ..FleetConfig::default()
        };
        Ok((code, env, config))
    }

    /// The job id: the 16-hex [`config_hash`] of the resolved triple.
    /// Identical configurations get identical ids — spool-level dedup
    /// and the cache key are the same fence the checkpoints use.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Self::resolve`].
    pub fn job_id(&self) -> Result<String, String> {
        let (code, env, config) = self.resolve()?;
        Ok(format!("{:016x}", config_hash(&code, &env, &config)))
    }
}

fn resolve_code(name: &str) -> Result<FleetCode, String> {
    use muse_core::presets;
    Ok(match name {
        "muse144_132" => FleetCode::muse(presets::muse_144_132()),
        "muse80_69" => FleetCode::muse(presets::muse_80_69()),
        "muse80_67" => FleetCode::muse(presets::muse_80_67()),
        "muse80_70" => FleetCode::muse(presets::muse_80_70()),
        "muse268_256" => FleetCode::muse(presets::muse_268_256()),
        "muse144_128" => FleetCode::muse(presets::muse_144_128()),
        "rs144_128_t1" => FleetCode::rs(
            RsMemoryCode::new(8, 144, 1).map_err(|e| format!("rs geometry: {e:?}"))?,
            4,
        ),
        "rs144_112_t2" => FleetCode::rs(
            RsMemoryCode::new(8, 144, 2).map_err(|e| format!("rs geometry: {e:?}"))?,
            4,
        ),
        other => return Err(format!("unknown code {other:?}")),
    })
}

fn resolve_env(name: &str) -> Result<Environment, String> {
    if name == "smoke" {
        return Ok(smoke_setup().0);
    }
    all_environments()
        .into_iter()
        .find(|e| e.name == name)
        .ok_or_else(|| {
            let known: Vec<&str> = all_environments().iter().map(|e| e.name).collect();
            format!("unknown environment {name:?} (known: {known:?} or smoke)")
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        let spec = JobSpec {
            code: "rs144_112_t2".into(),
            env: "chipkill-heavy".into(),
            estimator: "importance".into(),
            bias: 32.0,
            dimms: 4096,
            shards: 16,
            ..JobSpec::default()
        };
        assert_eq!(JobSpec::from_json(&spec.to_json()).unwrap(), spec);
    }

    #[test]
    fn job_ids_fence_the_configuration() {
        let a = JobSpec::default();
        let mut b = a.clone();
        b.seed ^= 1;
        assert_ne!(a.job_id().unwrap(), b.job_id().unwrap());
        // Threads are excluded: a job keeps its id on any machine.
        let mut c = a.clone();
        c.threads = 7;
        assert_eq!(a.job_id().unwrap(), c.job_id().unwrap());
        // Shards are runner policy, not configuration.
        let mut d = a.clone();
        d.shards = 9;
        assert_eq!(a.job_id().unwrap(), d.job_id().unwrap());
    }

    #[test]
    fn unknown_names_fail_loudly() {
        let mut spec = JobSpec {
            code: "hamming".into(),
            ..JobSpec::default()
        };
        assert!(spec.resolve().is_err());
        spec.code = "muse144_132".into();
        spec.env = "venus".into();
        assert!(spec.resolve().is_err());
        spec.env = "smoke".into();
        spec.estimator = "oracle".into();
        assert!(spec.resolve().is_err());
        assert!(JobSpec::from_json("{\"schema\":\"muse-job/v0\"}").is_err());
        assert!(JobSpec::from_json("not json").is_err());
    }

    #[test]
    fn smoke_jobs_resolve_to_the_pinned_setup() {
        let spec = JobSpec {
            smoke: true,
            dimms: 999_999, // ignored: smoke is pinned
            ..JobSpec::default()
        };
        let (_, env, config) = spec.resolve().unwrap();
        let (want_env, want_config) = smoke_setup();
        assert_eq!(env.name, want_env.name);
        assert_eq!(config.dimms, want_config.dimms);
        assert_eq!(config.seed, want_config.seed);
    }
}
