//! `muse-service`: the crash-only fleet-lifetime daemon.
//!
//! A long-running service that accepts lifetime-run jobs (code ×
//! environment × horizon × estimator), executes them through the
//! sharded supervisor with per-shard watchdog timeouts, and serves
//! repeated configurations from a CRC-checked, `config_hash`-fenced
//! on-disk result cache — a repeated config never recomputes.
//!
//! # Crash-only design: the spool directory
//!
//! There is no network protocol and no in-memory queue that can be
//! lost: the queue **is** the filesystem. A service root holds
//!
//! ```text
//! <root>/queue/<id>.job         submitted, waiting (JSON job spec)
//! <root>/active/<id>.job        claimed by a daemon (rename from queue/)
//! <root>/done/<id>.result       finished (JSON result, muse-result/v1)
//! <root>/failed/<id>.job|.err   failed loudly (spec kept + error text)
//! <root>/cache/<hash>.res       result cache (CRC + config_hash fenced)
//! <root>/checkpoints/<id>/      per-job lifetime-ckpt/v2 checkpoints
//! ```
//!
//! where `<id>` is the 16-hex [`config_hash`](muse_lifetime::config_hash)
//! of the resolved job — submission is idempotent and deduplication is
//! structural. Claims are single `rename`s (atomic on POSIX), results
//! are written temp-then-rename, and every startup *adopts* whatever a
//! previous process left in `active/` by renaming it back to `queue/`:
//! recovery and normal startup are the same code path. A drained or
//! killed daemon therefore never needs a shutdown protocol to preserve
//! state — the state was never anywhere volatile to begin with.
//!
//! # Graceful drain
//!
//! [`ServiceConfig::drain`] is a shared flag (the CLI's `serve` wires it
//! to SIGTERM/SIGINT). It is checked between jobs and — via
//! [`RunnerConfig::stop`](muse_lifetime::RunnerConfig) — at every shard
//! boundary inside a running job, so the drain window is bounded by one
//! shard plus one checkpoint write. The in-flight job checkpoints,
//! returns to `queue/`, and the daemon exits cleanly; a restart adopts
//! the checkpoint and resumes **bit-identically** (`tests/chaos.rs`
//! pins this against an uninterrupted run).
//!
//! # Chaos coverage
//!
//! Every durable-write path (checkpoints, cache records) threads an
//! [`IoFaultPlan`](muse_lifetime::IoFaultPlan); `tests/chaos.rs` sweeps
//! injected kills, shard hangs (watchdog), ENOSPC, torn writes, rename
//! and fsync failures, cache-record corruption, and failing/blocked
//! telemetry sinks, asserting the invariant the whole crate is built
//! around: **bit-identical tallies or a loud, resumable failure — never
//! wrong numbers, never a hang.**

#![deny(missing_docs)]

mod cache;
mod daemon;
mod job;

pub use cache::{CacheLookup, ResultCache, RESULT_MAGIC, RESULT_SCHEMA};
pub use daemon::{
    serve, JobResult, ServiceConfig, ServiceReport, ServiceTelemetry, Spool, SpoolStatus,
};
pub use job::{JobSpec, JOB_SCHEMA};
