//! The spool daemon: claim, run (or serve from cache), persist, repeat.
//!
//! [`serve`] is the whole daemon — a loop over the spool directory that
//! can be run once (`once: true`, drain the queue and return) or
//! forever (poll until the drain flag trips). See the crate docs for
//! the spool layout and the crash-only rationale.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use muse_lifetime::telemetry::WarnFn;
use muse_lifetime::{
    cell_label, run_sharded_with, FaultPlan, FleetTelemetry, LifetimeReport, LifetimeTally,
    RunStats, RunnerConfig, ShardedOutcome,
};
use muse_telemetry::{parse_object, Counter, Gauge, JsonBuilder, Metrics, Tracer};

use crate::cache::{CacheLookup, ResultCache};
use crate::job::JobSpec;

/// Schema tag of every result file in `done/`.
pub const RESULT_JSON_SCHEMA: &str = "muse-result/v1";

/// The spool directory of one service root: submission, claiming, and
/// status live here; [`serve`] is its consumer.
#[derive(Debug, Clone)]
pub struct Spool {
    root: PathBuf,
}

/// Queue-depth counts across the spool, for `status` output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpoolStatus {
    /// Jobs waiting in `queue/`.
    pub queued: u32,
    /// Jobs claimed in `active/` (normally 0 or 1 per daemon).
    pub active: u32,
    /// Results in `done/`.
    pub done: u32,
    /// Jobs in `failed/`.
    pub failed: u32,
}

fn count_ext(dir: &Path, ext: &str) -> std::io::Result<u32> {
    let mut n = 0;
    for entry in std::fs::read_dir(dir)? {
        if entry?.path().extension().is_some_and(|e| e == ext) {
            n += 1;
        }
    }
    Ok(n)
}

fn jobs_in(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut ids = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "job") {
            if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                ids.push(stem.to_string());
            }
        }
    }
    // Deterministic claim order regardless of readdir order.
    ids.sort();
    Ok(ids)
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

impl Spool {
    /// Opens (creating if needed) the spool under `root`.
    ///
    /// # Errors
    ///
    /// Directory creation failure.
    pub fn open(root: &Path) -> std::io::Result<Self> {
        for sub in ["queue", "active", "done", "failed", "cache", "checkpoints"] {
            std::fs::create_dir_all(root.join(sub))?;
        }
        Ok(Self {
            root: root.to_path_buf(),
        })
    }

    /// The `queue/` directory.
    pub fn queue_dir(&self) -> PathBuf {
        self.root.join("queue")
    }
    /// The `active/` directory.
    pub fn active_dir(&self) -> PathBuf {
        self.root.join("active")
    }
    /// The `done/` directory.
    pub fn done_dir(&self) -> PathBuf {
        self.root.join("done")
    }
    /// The `failed/` directory.
    pub fn failed_dir(&self) -> PathBuf {
        self.root.join("failed")
    }
    /// The `cache/` directory.
    pub fn cache_dir(&self) -> PathBuf {
        self.root.join("cache")
    }
    /// The checkpoint directory of one job.
    pub fn checkpoint_dir(&self, id: &str) -> PathBuf {
        self.root.join("checkpoints").join(id)
    }

    /// Submits a job: resolves its id and atomically writes
    /// `queue/<id>.job`. Returns `(id, enqueued)`; `enqueued` is false
    /// when the id is already queued or active (submission is
    /// idempotent — the duplicate is simply dropped). A job whose id is
    /// already in `done/` is still re-enqueued: re-running it is free
    /// by construction, the daemon serves it from the result cache.
    ///
    /// # Errors
    ///
    /// Invalid specs (unknown names, bad parameters) and spool I/O,
    /// both as displayable strings.
    pub fn submit(&self, spec: &JobSpec) -> Result<(String, bool), String> {
        let id = spec.job_id()?;
        let queued = self.queue_dir().join(format!("{id}.job"));
        if queued.exists() || self.active_dir().join(format!("{id}.job")).exists() {
            return Ok((id, false));
        }
        write_atomic(&queued, &spec.to_json()).map_err(|e| format!("submit {id}: {e}"))?;
        Ok((id, true))
    }

    /// Counts jobs per stage.
    ///
    /// # Errors
    ///
    /// Spool I/O.
    pub fn status(&self) -> std::io::Result<SpoolStatus> {
        Ok(SpoolStatus {
            queued: count_ext(&self.queue_dir(), "job")?,
            active: count_ext(&self.active_dir(), "job")?,
            done: count_ext(&self.done_dir(), "result")?,
            failed: count_ext(&self.failed_dir(), "job")?,
        })
    }

    /// Reads the `done/` result JSON of a job id.
    ///
    /// # Errors
    ///
    /// Missing or unreadable result file.
    pub fn result_json(&self, id: &str) -> std::io::Result<String> {
        std::fs::read_to_string(self.done_dir().join(format!("{id}.result")))
    }

    /// Renames every `active/` orphan back into `queue/` — the adoption
    /// step that makes recovery identical to startup. Returns the ids
    /// adopted.
    ///
    /// # Errors
    ///
    /// Spool I/O.
    pub fn adopt_orphans(&self) -> std::io::Result<Vec<String>> {
        let ids = jobs_in(&self.active_dir())?;
        for id in &ids {
            std::fs::rename(
                self.active_dir().join(format!("{id}.job")),
                self.queue_dir().join(format!("{id}.job")),
            )?;
        }
        Ok(ids)
    }
}

/// Policy knobs of one [`serve`] invocation.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Spool root directory.
    pub root: PathBuf,
    /// Drain the queue and return instead of polling forever.
    pub once: bool,
    /// Idle poll interval in milliseconds (ignored with `once`).
    pub poll_ms: u64,
    /// Cooperative shutdown flag: set (by a signal handler or a test)
    /// to drain — finish the current shard, checkpoint, re-queue the
    /// in-flight job, and return cleanly.
    pub drain: Arc<AtomicBool>,
    /// Per-shard watchdog timeout forwarded to
    /// [`RunnerConfig::shard_timeout_ms`].
    pub watchdog_ms: Option<u64>,
    /// Retries per shard before a job fails loudly.
    pub max_retries: u32,
    /// First retry backoff in milliseconds (doubles per attempt, with
    /// ±50% deterministic jitter).
    pub backoff_base_ms: u64,
    /// Checkpoint after this many newly completed shards.
    pub checkpoint_every: u32,
    /// Chaos injection (kills, hangs, and the nested I/O plan applied
    /// to checkpoints and the result cache).
    pub faults: Option<FaultPlan>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            root: PathBuf::from("muse-spool"),
            once: false,
            poll_ms: 200,
            drain: Arc::new(AtomicBool::new(false)),
            watchdog_ms: None,
            max_retries: 4,
            backoff_base_ms: 20,
            checkpoint_every: 1,
            faults: None,
        }
    }
}

/// Observability sinks for [`serve`] — the service-level analog of
/// [`FleetTelemetry`], forwarded into each job's run.
#[derive(Default)]
pub struct ServiceTelemetry<'a> {
    /// Metrics registry (service counters plus the per-run instruments).
    pub metrics: Option<&'a Metrics>,
    /// Prometheus textfile snapshot path.
    pub metrics_path: Option<PathBuf>,
    /// Structured `muse-trace/v1` event sink.
    pub tracer: Option<&'a Tracer>,
    /// Warning sink (resume banners, drain notices, retries, cache
    /// corruption).
    pub warn: Option<Box<WarnFn<'a>>>,
}

impl ServiceTelemetry<'_> {
    fn warn(&self, line: &str) {
        if let Some(warn) = &self.warn {
            warn(line);
        }
    }

    fn snapshot(&self, io_errors: Option<&Counter>) {
        if let (Some(metrics), Some(path)) = (self.metrics, &self.metrics_path) {
            if let Err(e) = metrics.write_textfile(path) {
                self.warn(&format!(
                    "warning: metrics snapshot to {} failed: {e}",
                    path.display()
                ));
                if let Some(counter) = io_errors {
                    counter.inc();
                }
            }
        }
    }
}

/// What one [`serve`] invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Jobs that produced a `done/` result (cache hits included).
    pub jobs_completed: u32,
    /// Jobs moved to `failed/`.
    pub jobs_failed: u32,
    /// Jobs served from the result cache without recomputing.
    pub cache_hits: u32,
    /// Cache records rejected by the CRC/hash fence (recomputed).
    pub cache_corrupt: u32,
    /// `active/` orphans adopted back into the queue at startup.
    pub adopted: u32,
    /// The loop exited via the drain flag (in-flight work checkpointed
    /// and re-queued).
    pub drained: bool,
}

/// One finished job, as written to `done/<id>.result` (flat
/// `muse-result/v1` JSON).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Job id (16-hex config hash).
    pub id: String,
    /// Code display name.
    pub code: String,
    /// Environment name.
    pub env: String,
    /// Machine-years covered.
    pub machine_years: f64,
    /// DUE events per machine-year.
    pub due_per_machine_year: f64,
    /// SDC words per machine-year.
    pub sdc_per_machine_year: f64,
    /// Served from the result cache (no recompute).
    pub cache_hit: bool,
    /// Shards computed in the finishing invocation.
    pub shards_run: u32,
    /// Shard attempts retried (kills + watchdog timeouts).
    pub retries: u32,
    /// Attempts killed by the shard watchdog.
    pub watchdog_kills: u32,
    /// The raw tally counters (weighted accumulators live only in the
    /// binary cache record; the rates above already incorporate them).
    pub tally: LifetimeTally,
}

impl JobResult {
    fn new(id: &str, report: &LifetimeReport, cache_hit: bool, stats: &RunStats) -> Self {
        Self {
            id: id.to_string(),
            code: report.code.clone(),
            env: report.environment.clone(),
            machine_years: report.machine_years,
            due_per_machine_year: report.due_per_machine_year,
            sdc_per_machine_year: report.sdc_per_machine_year,
            cache_hit,
            shards_run: stats.shards_run,
            retries: stats.retries,
            watchdog_kills: stats.watchdog_kills,
            tally: report.tally,
        }
    }

    /// Serializes to one `muse-result/v1` JSON line.
    pub fn to_json(&self) -> String {
        let t = &self.tally;
        let mut b = JsonBuilder::new();
        b.str("schema", RESULT_JSON_SCHEMA)
            .str("id", &self.id)
            .str("code", &self.code)
            .str("env", &self.env)
            .f64("machine_years", self.machine_years)
            .f64("due_per_machine_year", self.due_per_machine_year)
            .f64("sdc_per_machine_year", self.sdc_per_machine_year)
            .bool("cache_hit", self.cache_hit)
            .u64("shards_run", u64::from(self.shards_run))
            .u64("retries", u64::from(self.retries))
            .u64("watchdog_kills", u64::from(self.watchdog_kills))
            .u64("epochs", t.epochs)
            .u64("degraded_epochs", t.degraded_epochs)
            .u64("corrected_words", t.corrected_words)
            .u64("due_words", t.due_words)
            .u64("sdc_words", t.sdc_words)
            .u64("erasure_reads", t.erasure_reads)
            .u64("devices_retired", t.devices_retired)
            .u64("rows_retired", t.rows_retired)
            .u64("spare_rebuilds", t.spare_rebuilds)
            .u64("data_loss_events", t.data_loss_events)
            .u64("dimm_replacements", t.dimm_replacements);
        b.finish()
    }

    /// Parses a `muse-result/v1` JSON line. The weighted accumulators
    /// are not carried in JSON and parse back as zero.
    ///
    /// # Errors
    ///
    /// Malformed or missing fields; wrong `schema` tags are rejected.
    pub fn from_json(line: &str) -> Result<Self, String> {
        let obj = parse_object(line).map_err(|e| format!("job result: {e}"))?;
        let get = |e: muse_telemetry::JsonError| format!("job result: {e}");
        let schema = obj.str("schema").map_err(get)?;
        if schema != RESULT_JSON_SCHEMA {
            return Err(format!(
                "job result: schema mismatch: expected {RESULT_JSON_SCHEMA:?}, got {schema:?}"
            ));
        }
        let tally = LifetimeTally {
            epochs: obj.u64("epochs").map_err(get)?,
            degraded_epochs: obj.u64("degraded_epochs").map_err(get)?,
            corrected_words: obj.u64("corrected_words").map_err(get)?,
            due_words: obj.u64("due_words").map_err(get)?,
            sdc_words: obj.u64("sdc_words").map_err(get)?,
            erasure_reads: obj.u64("erasure_reads").map_err(get)?,
            devices_retired: obj.u64("devices_retired").map_err(get)?,
            rows_retired: obj.u64("rows_retired").map_err(get)?,
            spare_rebuilds: obj.u64("spare_rebuilds").map_err(get)?,
            data_loss_events: obj.u64("data_loss_events").map_err(get)?,
            dimm_replacements: obj.u64("dimm_replacements").map_err(get)?,
            ..LifetimeTally::default()
        };
        Ok(Self {
            id: obj.str("id").map_err(get)?.to_string(),
            code: obj.str("code").map_err(get)?.to_string(),
            env: obj.str("env").map_err(get)?.to_string(),
            machine_years: obj.f64("machine_years").map_err(get)?,
            due_per_machine_year: obj.f64("due_per_machine_year").map_err(get)?,
            sdc_per_machine_year: obj.f64("sdc_per_machine_year").map_err(get)?,
            cache_hit: obj.bool("cache_hit").map_err(get)?,
            shards_run: obj.u32("shards_run").map_err(get)?,
            retries: obj.u32("retries").map_err(get)?,
            watchdog_kills: obj.u32("watchdog_kills").map_err(get)?,
            tally,
        })
    }
}

/// The daemon's own instruments (the per-run supervisor instruments are
/// resolved separately inside each job).
struct ServiceInstruments {
    jobs_claimed: Arc<Counter>,
    jobs_completed: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_corrupt: Arc<Counter>,
    drains: Arc<Counter>,
    io_errors: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

impl ServiceInstruments {
    fn resolve(metrics: &Metrics) -> Self {
        Self {
            jobs_claimed: metrics.counter(
                "muse_service_jobs_claimed_total",
                "Jobs claimed from the spool queue",
            ),
            jobs_completed: metrics.counter(
                "muse_service_jobs_completed_total",
                "Jobs that produced a done/ result",
            ),
            jobs_failed: metrics.counter(
                "muse_service_jobs_failed_total",
                "Jobs moved to failed/ (parse, resolve, or run failure)",
            ),
            cache_hits: metrics.counter(
                "muse_service_cache_hits_total",
                "Jobs served from the result cache without recomputing",
            ),
            cache_misses: metrics.counter(
                "muse_service_cache_misses_total",
                "Jobs whose config hash had no cached result",
            ),
            cache_corrupt: metrics.counter(
                "muse_service_cache_corrupt_total",
                "Cache records rejected by the CRC/config-hash fence",
            ),
            drains: metrics.counter(
                "muse_service_drains_total",
                "Graceful drains (signal-initiated shutdowns)",
            ),
            io_errors: metrics.counter(
                "muse_io_errors_total",
                "Telemetry-writer I/O errors (metrics snapshots that failed to land)",
            ),
            queue_depth: metrics.gauge(
                "muse_service_queue_depth",
                "Jobs waiting in the spool queue",
            ),
        }
    }
}

enum JobOutcome {
    Done { cache_hit: bool },
    Failed,
    Drained,
}

/// Cache-lookup accounting threaded back into the [`ServiceReport`]
/// (the metrics counters are bumped at the lookup site).
#[derive(Default)]
struct CacheCounts {
    corrupt: u32,
}

/// Runs the daemon until the queue drains (`once`) or the drain flag
/// trips. See the crate docs for semantics; `tests/` and the CI
/// `service-smoke` job pin them.
///
/// # Errors
///
/// Spool/cache directory creation only. Per-job failures (bad specs,
/// exhausted retries, checkpoint I/O faults) are recorded in `failed/`
/// and [`ServiceReport::jobs_failed`], never returned — one poisoned
/// job must not take the daemon down.
pub fn serve(
    config: &ServiceConfig,
    telemetry: &ServiceTelemetry<'_>,
) -> std::io::Result<ServiceReport> {
    let spool = Spool::open(&config.root)?;
    let cache = ResultCache::open(
        &spool.cache_dir(),
        config.faults.as_ref().and_then(|f| f.io),
    )?;
    let instruments = telemetry.metrics.map(ServiceInstruments::resolve);
    let mut report = ServiceReport::default();

    let adopted = spool.adopt_orphans()?;
    report.adopted = adopted.len() as u32;
    for id in &adopted {
        telemetry.warn(&format!(
            "resume: adopted orphaned job {id} from active/ back into the queue"
        ));
    }

    'serve: loop {
        if config.drain.load(Ordering::Relaxed) {
            report.drained = true;
            break 'serve;
        }
        let queued = jobs_in(&spool.queue_dir())?;
        if let Some(ins) = &instruments {
            ins.queue_depth.set(queued.len() as f64);
        }
        let Some(id) = queued.into_iter().next() else {
            if config.once {
                break 'serve;
            }
            std::thread::sleep(std::time::Duration::from_millis(config.poll_ms));
            continue 'serve;
        };

        // Claim: a single atomic rename. A concurrent daemon losing the
        // race just sees ENOENT and re-polls.
        let active = spool.active_dir().join(format!("{id}.job"));
        if std::fs::rename(spool.queue_dir().join(format!("{id}.job")), &active).is_err() {
            continue 'serve;
        }
        if let Some(ins) = &instruments {
            ins.jobs_claimed.inc();
        }

        let mut counts = CacheCounts::default();
        let outcome = run_job(
            &spool,
            &cache,
            config,
            telemetry,
            &instruments,
            &id,
            &mut counts,
        );
        report.cache_corrupt += counts.corrupt;
        match outcome {
            JobOutcome::Done { cache_hit } => {
                report.jobs_completed += 1;
                if cache_hit {
                    report.cache_hits += 1;
                }
            }
            JobOutcome::Failed => report.jobs_failed += 1,
            JobOutcome::Drained => {
                report.drained = true;
                break 'serve;
            }
        }
        telemetry.snapshot(instruments.as_ref().map(|i| &*i.io_errors));
    }

    if report.drained {
        if let Some(ins) = &instruments {
            ins.drains.inc();
        }
        telemetry.warn("drain: queue state persisted; restart resumes from checkpoints");
    }
    telemetry.snapshot(instruments.as_ref().map(|i| &*i.io_errors));
    Ok(report)
}

/// Runs one claimed job to a terminal spool state. Every failure path
/// lands in `failed/` with the error text beside the spec; the drain
/// path re-queues.
fn run_job(
    spool: &Spool,
    cache: &ResultCache,
    config: &ServiceConfig,
    telemetry: &ServiceTelemetry<'_>,
    instruments: &Option<ServiceInstruments>,
    id: &str,
    counts: &mut CacheCounts,
) -> JobOutcome {
    let active = spool.active_dir().join(format!("{id}.job"));
    let fail = |error: String| {
        telemetry.warn(&format!("job {id} failed: {error}"));
        let _ = std::fs::rename(&active, spool.failed_dir().join(format!("{id}.job")));
        let _ = write_atomic(&spool.failed_dir().join(format!("{id}.err")), &error);
        if let Some(ins) = instruments {
            ins.jobs_failed.inc();
        }
        JobOutcome::Failed
    };

    let spec = match std::fs::read_to_string(&active)
        .map_err(|e| e.to_string())
        .and_then(|text| JobSpec::from_json(&text))
    {
        Ok(spec) => spec,
        Err(e) => return fail(e),
    };
    let (code, env, fleet_config) = match spec.resolve() {
        Ok(triple) => triple,
        Err(e) => return fail(e),
    };
    // Fence the file name against its contents: a record renamed onto
    // the wrong id would otherwise cache under a hash it doesn't have.
    match spec.job_id() {
        Ok(actual) if actual == id => {}
        Ok(actual) => {
            return fail(format!(
                "job id mismatch: file {id}, spec hashes to {actual}"
            ))
        }
        Err(e) => return fail(e),
    }
    let hash = u64::from_str_radix(id, 16).expect("job id is 16-hex by construction");

    let finish = |tally: LifetimeTally, cache_hit: bool, stats: &RunStats| {
        let report = LifetimeReport::from_tally(&code, &env, &fleet_config, tally);
        let result = JobResult::new(id, &report, cache_hit, stats);
        if let Err(e) = write_atomic(
            &spool.done_dir().join(format!("{id}.result")),
            &result.to_json(),
        ) {
            return fail(format!("writing result: {e}"));
        }
        let _ = std::fs::remove_file(&active);
        if let Some(ins) = instruments {
            ins.jobs_completed.inc();
        }
        JobOutcome::Done { cache_hit }
    };

    match cache.get(hash) {
        CacheLookup::Hit(tally) => {
            telemetry.warn(&format!("job {id}: result cache hit, not recomputing"));
            if let Some(ins) = instruments {
                ins.cache_hits.inc();
            }
            return finish(tally, true, &RunStats::default());
        }
        CacheLookup::Corrupt => {
            telemetry.warn(&format!(
                "warning: job {id}: cache record failed its CRC/config-hash fence; recomputing"
            ));
            counts.corrupt += 1;
            if let Some(ins) = instruments {
                ins.cache_corrupt.inc();
            }
        }
        CacheLookup::Miss => {
            if let Some(ins) = instruments {
                ins.cache_misses.inc();
            }
        }
    }

    let runner = RunnerConfig {
        shards: spec.shards,
        checkpoint_dir: Some(spool.checkpoint_dir(id)),
        checkpoint_prefix: "job".to_string(),
        checkpoint_every: config.checkpoint_every,
        resume: true,
        max_retries: config.max_retries,
        backoff_base_ms: config.backoff_base_ms,
        shard_timeout_ms: config.watchdog_ms,
        stop: Some(Arc::clone(&config.drain)),
        ..RunnerConfig::default()
    };
    let fleet_telemetry = FleetTelemetry {
        tracer: telemetry.tracer,
        metrics: telemetry.metrics,
        metrics_path: telemetry.metrics_path.clone(),
        label: cell_label(&code.name(), env.name),
        warn: telemetry
            .warn
            .as_ref()
            .map(|w| Box::new(move |line: &str| w(line)) as Box<WarnFn<'_>>),
        heartbeat: None,
    };
    match run_sharded_with(
        &code,
        &env,
        &fleet_config,
        &runner,
        config.faults.as_ref(),
        &fleet_telemetry,
    ) {
        Ok(ShardedOutcome::Complete { report, stats }) => {
            if let Some(info) = &stats.resume {
                telemetry.warn(&format!(
                    "resume: job {id} adopted checkpoint generation {} ({} of {} shards)",
                    info.generation, info.shards_done, info.total_shards
                ));
            }
            // The cache is an optimization: a failed put is a warning,
            // the (already computed, already correct) result still lands.
            if let Err(e) = cache.put(hash, &report.tally) {
                telemetry.warn(&format!("warning: job {id}: cache write failed: {e}"));
            }
            let _ = std::fs::remove_dir_all(spool.checkpoint_dir(id));
            finish(report.tally, false, &stats)
        }
        Ok(ShardedOutcome::Interrupted { stats }) => {
            telemetry.warn(&format!(
                "drain: job {id} checkpointed at a shard boundary ({} of {} shards done); \
                 re-queued for the next daemon",
                stats.shards_resumed + stats.shards_run,
                stats.total_shards
            ));
            let _ = std::fs::rename(&active, spool.queue_dir().join(format!("{id}.job")));
            JobOutcome::Drained
        }
        Err(e) => fail(e.to_string()),
    }
}
