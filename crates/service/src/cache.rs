//! The on-disk result cache: `muse-result-cache/v1` records.
//!
//! One record caches the complete [`LifetimeTally`] of one finished
//! run, keyed — in the file name *and* inside the CRC-protected payload
//! — by the run's [`config_hash`](muse_lifetime::config_hash). A lookup
//! only ever returns a tally whose embedded hash matches the request
//! and whose CRC verifies; anything else (truncation, bit rot, a record
//! renamed over the wrong key) is reported as [`CacheLookup::Corrupt`]
//! and treated as a miss. **A corrupt cache can cost a recompute, never
//! a wrong number.**
//!
//! # Record layout (`<hash:016x>.res`, 208 bytes)
//!
//! ```text
//! 0    8  magic  b"MRESLT1\n"
//! 8    4  version (u32 LE) = 1
//! 12   8  config_hash (u64 LE) — must equal the requested key
//! 20  88  the 11 raw LifetimeTally counters (u64 LE, declaration order)
//! 108 96  the 3 WeightedCount accumulators, sum_q64 then sumsq_q32 (u128 LE)
//! 204  4  CRC-32 of bytes 0..204
//! ```
//!
//! Writes are atomic (temp + rename) and routed through the same
//! [`IoFaultPlan`] seam as checkpoints, keyed by the config hash — so
//! the chaos suite can tear, starve, or rot cache records at exact,
//! reproducible keys. A failed cache write is a warning for the caller,
//! never a job failure: the cache is an optimization, correctness lives
//! in the run itself.

use std::io::Write;
use std::path::{Path, PathBuf};

use muse_lifetime::estimator::WeightedCount;
use muse_lifetime::{crc32, injected_io_error, IoFaultPlan, LifetimeTally};

/// Magic bytes opening every cache record.
pub const RESULT_MAGIC: [u8; 8] = *b"MRESLT1\n";
/// Schema name of the record format (for docs and error messages).
pub const RESULT_SCHEMA: &str = "muse-result-cache/v1";
const RECORD_VERSION: u32 = 1;
const RECORD_LEN: usize = 208;
const TALLY_FIELDS: usize = 11;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    /// A valid record for exactly this config hash.
    Hit(LifetimeTally),
    /// No record on disk.
    Miss,
    /// A record exists but failed validation (CRC, magic, length, or
    /// embedded-hash mismatch). Callers count it and recompute.
    Corrupt,
}

/// The config-hash-keyed result cache of one service root.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    faults: Option<IoFaultPlan>,
}

fn tally_fields(t: &LifetimeTally) -> [u64; TALLY_FIELDS] {
    [
        t.epochs,
        t.degraded_epochs,
        t.corrected_words,
        t.due_words,
        t.sdc_words,
        t.erasure_reads,
        t.devices_retired,
        t.rows_retired,
        t.spare_rebuilds,
        t.data_loss_events,
        t.dimm_replacements,
    ]
}

fn encode(hash: u64, t: &LifetimeTally) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_LEN);
    out.extend_from_slice(&RESULT_MAGIC);
    out.extend_from_slice(&RECORD_VERSION.to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    for field in tally_fields(t) {
        out.extend_from_slice(&field.to_le_bytes());
    }
    for wc in [t.due_weighted, t.sdc_weighted, t.weight_sum] {
        out.extend_from_slice(&wc.sum_q64.to_le_bytes());
        out.extend_from_slice(&wc.sumsq_q32.to_le_bytes());
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    debug_assert_eq!(out.len(), RECORD_LEN);
    out
}

fn decode(bytes: &[u8], want_hash: u64) -> Option<LifetimeTally> {
    if bytes.len() != RECORD_LEN || bytes[..8] != RESULT_MAGIC {
        return None;
    }
    let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
    let u128_at = |off: usize| u128::from_le_bytes(bytes[off..off + 16].try_into().unwrap());
    if u32_at(8) != RECORD_VERSION
        || crc32(&bytes[..RECORD_LEN - 4]) != u32_at(RECORD_LEN - 4)
        || u64_at(12) != want_hash
    {
        return None;
    }
    let f = |i: usize| u64_at(20 + 8 * i);
    let wc = |i: usize| WeightedCount {
        sum_q64: u128_at(108 + 32 * i),
        sumsq_q32: u128_at(108 + 32 * i + 16),
    };
    Some(LifetimeTally {
        epochs: f(0),
        degraded_epochs: f(1),
        corrected_words: f(2),
        due_words: f(3),
        sdc_words: f(4),
        erasure_reads: f(5),
        devices_retired: f(6),
        rows_retired: f(7),
        spare_rebuilds: f(8),
        data_loss_events: f(9),
        dimm_replacements: f(10),
        due_weighted: wc(0),
        sdc_weighted: wc(1),
        weight_sum: wc(2),
    })
}

impl ResultCache {
    /// Opens (creating if needed) the cache under `dir`, with an
    /// optional I/O chaos seam whose decisions are keyed by the record's
    /// config hash.
    ///
    /// # Errors
    ///
    /// Directory creation failure.
    pub fn open(dir: &Path, faults: Option<IoFaultPlan>) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            faults: faults.filter(IoFaultPlan::any_storage_faults),
        })
    }

    /// The record path for a config hash.
    pub fn record_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.res"))
    }

    /// Looks up `hash`. Corruption of any kind is reported, not
    /// returned: a [`CacheLookup::Hit`] tally is bit-exact by
    /// construction.
    pub fn get(&self, hash: u64) -> CacheLookup {
        match std::fs::read(self.record_path(hash)) {
            Ok(bytes) => match decode(&bytes, hash) {
                Some(tally) => CacheLookup::Hit(tally),
                None => CacheLookup::Corrupt,
            },
            Err(_) => CacheLookup::Miss,
        }
    }

    /// Atomically persists the record for `hash`: write-to-temp,
    /// `fsync`, rename, with every step subject to the attached
    /// [`IoFaultPlan`] (keyed by `hash`). A post-commit
    /// `corrupt_record` fault flips one bit in the committed file —
    /// the bit-rot case [`Self::get`]'s CRC exists to catch.
    ///
    /// # Errors
    ///
    /// Real or injected I/O failure; the previous record (if any) is
    /// intact either way.
    pub fn put(&self, hash: u64, tally: &LifetimeTally) -> std::io::Result<()> {
        if let Some(f) = &self.faults {
            if f.enospc(hash) {
                return Err(injected_io_error("ENOSPC", hash));
            }
        }
        let bytes = encode(hash, tally);
        let write_len = match &self.faults {
            Some(f) if f.short_write(hash) => bytes.len() / 2,
            _ => bytes.len(),
        };
        let tmp = self.dir.join(format!("{hash:016x}.tmp"));
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes[..write_len])?;
        if let Some(f) = &self.faults {
            if f.fsync_fails(hash) {
                return Err(injected_io_error("fsync failure", hash));
            }
        }
        file.sync_all()?;
        drop(file);
        if let Some(f) = &self.faults {
            if f.rename_fails(hash) {
                return Err(injected_io_error("rename failure", hash));
            }
        }
        let path = self.record_path(hash);
        std::fs::rename(&tmp, &path)?;
        if let Some(f) = &self.faults {
            if f.corrupts_record(hash) {
                let mut bytes = std::fs::read(&path)?;
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x08;
                std::fs::write(&path, &bytes)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(tag: &str) -> Self {
            let mut dir = std::env::temp_dir();
            dir.push(format!("muse-cache-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn sample() -> LifetimeTally {
        let mut t = LifetimeTally {
            epochs: 9000,
            due_words: 17,
            sdc_words: 1,
            corrected_words: 230,
            erasure_reads: 400,
            ..LifetimeTally::default()
        };
        t.due_weighted.push(2.5);
        t.weight_sum.push(1.0);
        t
    }

    #[test]
    fn roundtrip_and_miss() {
        let dir = TempDir::new("roundtrip");
        let cache = ResultCache::open(&dir.0, None).unwrap();
        assert_eq!(cache.get(42), CacheLookup::Miss);
        cache.put(42, &sample()).unwrap();
        assert_eq!(cache.get(42), CacheLookup::Hit(sample()));
        // A different hash is a miss even with a record on disk.
        assert_eq!(cache.get(43), CacheLookup::Miss);
    }

    #[test]
    fn every_truncation_and_bitflip_is_corrupt_never_wrong() {
        let dir = TempDir::new("mangle");
        let cache = ResultCache::open(&dir.0, None).unwrap();
        cache.put(7, &sample()).unwrap();
        let path = cache.record_path(7);
        let good = std::fs::read(&path).unwrap();
        for len in 0..good.len() {
            std::fs::write(&path, &good[..len]).unwrap();
            assert_eq!(cache.get(7), CacheLookup::Corrupt, "prefix {len} accepted");
        }
        for bit in 0..good.len() * 8 {
            let mut mangled = good.clone();
            mangled[bit / 8] ^= 1 << (bit % 8);
            std::fs::write(&path, &mangled).unwrap();
            assert_eq!(cache.get(7), CacheLookup::Corrupt, "bit {bit} accepted");
        }
        // Restored bytes hit again.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(cache.get(7), CacheLookup::Hit(sample()));
    }

    #[test]
    fn hash_fencing_rejects_renamed_records() {
        // A record copied over another key carries its own hash inside
        // the CRC'd payload — the fence catches the swap.
        let dir = TempDir::new("fence");
        let cache = ResultCache::open(&dir.0, None).unwrap();
        cache.put(1, &sample()).unwrap();
        std::fs::copy(cache.record_path(1), cache.record_path(2)).unwrap();
        assert_eq!(cache.get(2), CacheLookup::Corrupt);
    }

    #[test]
    fn injected_faults_fail_loudly_or_detectably() {
        let dir = TempDir::new("faults");
        let loud = |plan: IoFaultPlan| {
            let cache = ResultCache::open(&dir.0, Some(plan)).unwrap();
            cache.put(5, &sample()).unwrap_err();
            // Nothing half-written became visible.
            assert_eq!(cache.get(5), CacheLookup::Miss);
        };
        loud(IoFaultPlan {
            enospc_prob: 1.0,
            ..IoFaultPlan::default()
        });
        loud(IoFaultPlan {
            fsync_fail_prob: 1.0,
            ..IoFaultPlan::default()
        });
        loud(IoFaultPlan {
            rename_fail_prob: 1.0,
            ..IoFaultPlan::default()
        });
        // Torn write: commit "succeeds" but the CRC refuses the record.
        let torn = ResultCache::open(
            &dir.0,
            Some(IoFaultPlan {
                short_write_prob: 1.0,
                ..IoFaultPlan::default()
            }),
        )
        .unwrap();
        torn.put(6, &sample()).unwrap();
        assert_eq!(torn.get(6), CacheLookup::Corrupt);
        // Post-commit rot: same detection.
        let rot = ResultCache::open(
            &dir.0,
            Some(IoFaultPlan {
                corrupt_record_prob: 1.0,
                ..IoFaultPlan::default()
            }),
        )
        .unwrap();
        rot.put(8, &sample()).unwrap();
        assert_eq!(rot.get(8), CacheLookup::Corrupt);
    }
}
