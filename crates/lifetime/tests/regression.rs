//! Reproducibility pins: exact fleet tallies for the fixed smoke
//! configuration ([`muse_lifetime::smoke_setup`] — the same setup
//! `bench_lifetime --smoke` asserts in CI).
//!
//! The pinned values live in [`muse_lifetime::smoke_expected`] and pin the
//! composed behaviour of the per-cell RNG streams, the arrival sampling,
//! and the erasure-mode classification. If you change any of them *on
//! purpose*, re-baseline `smoke_expected` and say so in CHANGES.md.

use muse_lifetime::{scenario_codes, simulate_fleet, smoke_setup, verify_smoke};

#[test]
fn smoke_tallies_are_pinned() {
    let (env, config) = smoke_setup();
    let reports: Vec<_> = scenario_codes()
        .iter()
        .map(|code| simulate_fleet(code, &env, &config))
        .collect();
    if let Err(drift) = verify_smoke(&reports) {
        panic!(
            "pinned fleet tally changed ({drift}): RNG streams, arrival \
             sampling, or erasure classification drifted"
        );
    }
    for r in &reports {
        assert_eq!(r.tally.epochs, config.dimms * config.epochs());
        assert_eq!(r.degraded_fraction, 1.0);
    }
}

#[test]
fn smoke_shows_the_code_reliability_ordering() {
    // The differentiators the matrix exists for: combined error-and-
    // erasure decoding lets the t=2 RS correct every transient under one
    // erased chip (zero degraded DUEs, zero SDCs) where the t=1 budget is
    // already spent, and MUSE's odd multipliers leak fewer silent
    // corruptions than same-redundancy RS.
    let (env, config) = smoke_setup();
    let reports: Vec<_> = scenario_codes()
        .iter()
        .map(|c| simulate_fleet(c, &env, &config))
        .collect();
    let row = |name: &str| {
        &reports
            .iter()
            .find(|r| r.code == name)
            .expect("scenario present")
            .tally
    };
    assert_eq!(row("RS(144,112) t=2").sdc_words, 0);
    assert_eq!(
        row("RS(144,112) t=2").due_words,
        0,
        "2e + ν ≤ 2t: one transient under one erasure is correctable"
    );
    assert!(row("RS(144,112) t=2").due_words < row("RS(144,128) t=1").due_words);
    assert!(row("MUSE(80,69)").sdc_words < row("RS(144,128) t=1").sdc_words);
    // MUSE's combined mode recovers its unique-explanation fraction.
    assert!(row("MUSE(144,132)").corrected_words > 0);
}
