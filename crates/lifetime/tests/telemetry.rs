//! The telemetry non-perturbation contract: every observability hook —
//! tracing, metrics, heartbeats, even a saturated tracer dropping events
//! under backpressure — leaves the simulation bit-identical to a run
//! with telemetry off, at any thread count. Tallies here are compared
//! with `==` over the whole [`LifetimeTally`], so the likelihood-weighted
//! fixed-point accumulators are pinned too, not just the event counts.

use std::cell::Cell;
use std::io::Write;
use std::sync::{Arc, Mutex};

use muse_lifetime::{
    run_sharded_with, simulate_fleet, smoke_setup, Estimator, FleetCode, FleetConfig,
    FleetTelemetry, LifetimeTally, RunnerConfig, ShardedOutcome,
};
use muse_telemetry::{Metrics, TraceEvent, Tracer};

/// An in-memory `Write` sink shared with the test after the writer
/// thread is done with it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A sink whose every write blocks on a mutex the test holds for the
/// whole run — deterministic backpressure, independent of how fast the
/// simulation happens to be.
struct GatedSink(Arc<Mutex<()>>);

impl Write for GatedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        drop(self.0.lock().unwrap());
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn smoke_code() -> FleetCode {
    FleetCode::muse(muse_core::presets::muse_144_132())
}

/// Sharded run with every hook attached; returns the tally plus the
/// trace bytes.
fn run_instrumented(config: &FleetConfig, capacity: usize) -> (LifetimeTally, Vec<u8>, u64) {
    let (env, _) = smoke_setup();
    let buf = SharedBuf::default();
    let tracer = Tracer::new(Box::new(buf.clone()), capacity);
    let registry = Metrics::new();
    let heartbeats = Cell::new(0u32);
    let telemetry = FleetTelemetry {
        tracer: Some(&tracer),
        metrics: Some(&registry),
        metrics_path: None,
        label: muse_lifetime::cell_label("MUSE(144,132)", env.name),
        warn: Some(Box::new(|_line: &str| {})),
        heartbeat: Some(Box::new(|_snap| heartbeats.set(heartbeats.get() + 1))),
    };
    let runner = RunnerConfig {
        shards: 4,
        ..RunnerConfig::default()
    };
    let outcome = run_sharded_with(&smoke_code(), &env, config, &runner, None, &telemetry)
        .expect("sharded run");
    let tally = match outcome {
        ShardedOutcome::Complete { report, .. } => report.tally,
        ShardedOutcome::Interrupted { .. } => panic!("run was not interrupted"),
    };
    assert_eq!(heartbeats.get(), 4, "one heartbeat per completed shard");
    // The registry saw the run: shard counter matches, trial counter and
    // shard-wall histogram moved.
    let rendered = registry.render();
    assert!(
        rendered.contains("muse_lifetime_shards_completed_total 4"),
        "{rendered}"
    );
    assert!(
        rendered.contains("muse_lifetime_shard_wall_ms_count 4"),
        "{rendered}"
    );
    drop(telemetry);
    let summary = tracer.finish();
    let bytes = buf.0.lock().unwrap().clone();
    (tally, bytes, summary.dropped)
}

#[test]
fn telemetry_never_perturbs_tallies() {
    let (env, base_config) = smoke_setup();
    for estimator in [Estimator::Naive, Estimator::importance(16.0)] {
        // Telemetry-off baseline: the plain simulator, single-threaded.
        let config = FleetConfig {
            estimator,
            threads: 1,
            ..base_config
        };
        let baseline = simulate_fleet(&smoke_code(), &env, &config).tally;
        for threads in [1usize, 4] {
            let config = FleetConfig { threads, ..config };
            let (tally, bytes, dropped) = run_instrumented(&config, 4096);
            assert_eq!(
                tally,
                baseline,
                "telemetry perturbed the {} tally at {threads} threads",
                estimator.name()
            );
            assert_eq!(dropped, 0, "ample capacity must not drop");
            // The stream is schema-valid, gap-free, and bracketed.
            let lines: Vec<&str> = std::str::from_utf8(&bytes).unwrap().lines().collect();
            let mut kinds = Vec::new();
            for (i, line) in lines.iter().enumerate() {
                let (seq, event) = TraceEvent::parse_line(line).expect("schema-valid line");
                assert_eq!(seq, i as u64, "gap-free sequence");
                kinds.push(event.kind());
            }
            assert_eq!(kinds.first(), Some(&"run_start"));
            assert_eq!(kinds.last(), Some(&"run_end"));
            assert_eq!(kinds.iter().filter(|k| **k == "shard_end").count(), 4);
            assert_eq!(kinds.iter().filter(|k| **k == "heartbeat").count(), 4);
        }
    }
}

#[test]
fn weight_cap_saturation_is_traced() {
    // A bias large enough that the inflated arrival probability clips at
    // the supervisor's cap on every channel — the stream must say so up
    // front, once per clipped channel, before any shard runs.
    let (_env, base_config) = smoke_setup();
    let config = FleetConfig {
        estimator: Estimator::importance(1.0e6),
        threads: 1,
        dimms: 4,
        ..base_config
    };
    let (_tally, bytes, _dropped) = run_instrumented(&config, 4096);
    let lines: Vec<String> = std::str::from_utf8(&bytes)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    let saturated: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"weight_cap_saturated\""))
        .collect();
    assert!(!saturated.is_empty(), "no saturation events in stream");
    assert!(
        saturated
            .iter()
            .any(|l| l.contains("\"channel\":\"whole\"")),
        "{saturated:?}"
    );
    // They precede the first shard.
    let first_sat = lines
        .iter()
        .position(|l| l.contains("weight_cap_saturated"))
        .unwrap();
    let first_shard = lines
        .iter()
        .position(|l| l.contains("\"shard_start\""))
        .unwrap();
    assert!(first_sat < first_shard);
}

#[test]
fn dropped_events_do_not_perturb_tallies() {
    let (env, base_config) = smoke_setup();
    let config = FleetConfig {
        threads: 1,
        ..base_config
    };
    let baseline = simulate_fleet(&smoke_code(), &env, &config).tally;
    // Capacity 1 + a writer blocked for the whole run: the first event is
    // taken by the (stuck) writer, the second fills the channel, and every
    // later one must drop.
    let gate = Arc::new(Mutex::new(()));
    let held = gate.lock().unwrap();
    let tracer = Tracer::new(Box::new(GatedSink(Arc::clone(&gate))), 1);
    let telemetry = FleetTelemetry {
        tracer: Some(&tracer),
        ..FleetTelemetry::disabled()
    };
    let runner = RunnerConfig {
        shards: 4,
        ..RunnerConfig::default()
    };
    let outcome = run_sharded_with(&smoke_code(), &env, &config, &runner, None, &telemetry)
        .expect("sharded run");
    let tally = match outcome {
        ShardedOutcome::Complete { report, .. } => report.tally,
        ShardedOutcome::Interrupted { .. } => panic!("run was not interrupted"),
    };
    drop(telemetry);
    drop(held);
    let summary = tracer.finish();
    assert!(summary.dropped > 0, "backpressure must have dropped events");
    assert_eq!(summary.emitted, summary.written + summary.dropped);
    assert_eq!(
        tally, baseline,
        "dropping trace events must not perturb the simulation"
    );
}
