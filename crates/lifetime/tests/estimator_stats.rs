//! Statistical correctness of the importance-sampling estimator.
//!
//! Everything here runs on rate-inflated configurations where naive
//! Monte-Carlo *can* resolve the DUE/SDC rates, so the IS estimates have
//! a trustworthy reference:
//!
//! - **Agreement**: the IS point estimates match the naive ones within
//!   3 sigma of the combined confidence intervals.
//! - **Coverage**: over ≥100 seeded replications, the 95% CI contains
//!   the (independently measured) true rate at least as often as a
//!   4-sigma binomial lower bound on 95% coverage allows.
//! - **Weight conservation**: the mean final trajectory weight is 1
//!   within sampling error, and the effective sample size is sane.
//!
//! All tests are seeded and deterministic — they either always pass or
//! always fail for a given build, so they can gate CI.

use muse_lifetime::{
    scenario_codes, simulate_fleet, smoke_setup, Estimator, FleetCode, RateEstimate,
};

/// The inflated-rate reference code: RS(144,128) t=1 produces plenty of
/// both DUEs and SDCs under the smoke environment, so naive MC resolves
/// the very rates IS re-estimates.
fn rs_t1() -> FleetCode {
    scenario_codes()
        .into_iter()
        .find(|c| c.name() == "RS(144,128) t=1")
        .expect("RS t=1 in scenario_codes")
}

fn combined_sigma(a: &RateEstimate, b: &RateEstimate) -> f64 {
    (a.std_error().powi(2) + b.std_error().powi(2)).sqrt()
}

#[test]
fn is_agrees_with_naive_within_three_sigma() {
    let (env, mut config) = smoke_setup();
    config.dimms = 48;
    let code = rs_t1();

    let naive = simulate_fleet(&code, &env, &config);
    config.estimator = Estimator::importance(8.0);
    let is = simulate_fleet(&code, &env, &config);

    // The reference must actually resolve both rates.
    assert!(naive.due_estimate.events > 100, "naive DUEs too sparse");
    assert!(naive.sdc_estimate.events > 10, "naive SDCs too sparse");
    assert!(is.sdc_estimate.events > 0, "IS saw no SDC events");

    for (n, i, label) in [
        (&naive.due_estimate, &is.due_estimate, "due"),
        (&naive.sdc_estimate, &is.sdc_estimate, "sdc"),
    ] {
        let sigma = combined_sigma(n, i);
        assert!(
            (n.mean - i.mean).abs() <= 3.0 * sigma,
            "{label}: naive {} vs IS {} differ by more than 3 sigma ({sigma})",
            n.mean,
            i.mean,
        );
    }
}

#[test]
fn ci_coverage_over_replications() {
    let (env, base) = smoke_setup();
    let code = rs_t1();

    // Ground truth from one large naive fleet: ~60k DUE events, so the
    // truth's own relative error (<1%) is negligible next to the width
    // of each replication's CI.
    let mut big = base;
    big.dimms = 1024;
    let truth = simulate_fleet(&code, &env, &big).due_estimate.mean;

    const REPS: u32 = 110;
    let mut covered = 0u32;
    for rep in 0..REPS {
        let mut c = base;
        c.dimms = 32;
        c.seed = 0xC0FF_EE00 + u64::from(rep);
        c.estimator = Estimator::importance(4.0);
        let e = simulate_fleet(&code, &env, &c).due_estimate;
        assert!(e.lo.is_finite() && e.hi.is_finite() && e.lo <= e.hi);
        if e.lo <= truth && truth <= e.hi {
            covered += 1;
        }
    }
    // Binomial bound: at nominal 95% coverage the count is
    // Bin(110, 0.95) — mean 104.5, sd ≈ 2.3. Requiring ≥ 94 sits more
    // than 4 sigma below the mean (false-alarm < 1e-5) while still
    // catching any estimator whose true coverage drops below ~85%.
    assert!(covered >= 94, "only {covered}/{REPS} CIs covered the truth");
}

#[test]
fn trajectory_weights_are_conserved() {
    let (env, mut config) = smoke_setup();
    config.estimator = Estimator::importance(16.0);
    let r = simulate_fleet(&rs_t1(), &env, &config);

    let d = config.dimms as f64;
    let ws = &r.tally.weight_sum;
    let mean_w = ws.sum() / d;
    // Sample variance of the per-DIMM final weights, then the standard
    // error of their mean; E[w] = 1 exactly under the biased measure.
    let var = ((ws.sum_sq() - ws.sum().powi(2) / d) / (d - 1.0)).max(0.0);
    let se = (var / d).sqrt().max(1e-9);
    assert!(
        (mean_w - 1.0).abs() <= 4.0 * se,
        "mean weight {mean_w} is not 1 within 4 sigma ({se})"
    );
    // Kish effective sample size: positive, at most the DIMM count.
    let eff = ws.effective_n();
    assert!(eff > 1.0 && eff <= d, "effective n {eff} out of range");
}
