//! Property tests over the checkpoint store's I/O-chaos contract, plus
//! supervisor-level integration under the same faults.
//!
//! The property: drive [`CheckpointStore::save`] through an arbitrary
//! [`IoFaultPlan`] (ENOSPC, torn writes, fsync failures, rename
//! failures, post-commit bit rot at arbitrary probabilities) and at
//! every step [`CheckpointStore::load`] returns either a **bit-exact
//! previously committed checkpoint** (possibly the fallback generation,
//! flagged `fell_back`) or **nothing** (clean restart) — never a torn,
//! merged, or otherwise wrong checkpoint. A faulted save either fails
//! loudly with an `injected` error and leaves prior state intact, or
//! commits something the CRC layer later adjudicates.
//!
//! The integration tests then close the loop the satellite asks for:
//! a run whose checkpoints are torn or rotted still resumes to tallies
//! bit-identical to an uninterrupted [`simulate_fleet`].

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use muse_lifetime::{
    run_sharded, simulate_fleet, smoke_setup, Checkpoint, CheckpointStore, Environment, FaultPlan,
    FleetCode, FleetConfig, IoFaultPlan, LifetimeTally, RunnerConfig, ShardedOutcome,
    WeightedCount,
};
use proptest::prelude::*;

/// A fresh per-test checkpoint directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("muse-iofault-{tag}-{case}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A distinct, fully populated checkpoint per generation so that a
/// wrong-checkpoint load cannot masquerade as the right one.
fn checkpoint_for(generation: u64) -> Checkpoint {
    let tally = |salt: u64| LifetimeTally {
        epochs: generation * 1_000 + salt,
        degraded_epochs: generation * 31 + salt,
        corrected_words: generation ^ (salt << 8),
        due_words: salt,
        sdc_words: generation,
        erasure_reads: generation * 7 + salt,
        devices_retired: salt * 3,
        rows_retired: generation + 11,
        spare_rebuilds: salt + 13,
        data_loss_events: generation & salt,
        dimm_replacements: generation | salt,
        due_weighted: WeightedCount {
            sum_q64: u128::from(generation) << 64 | u128::from(salt),
            sumsq_q32: u128::from(salt) << 32,
        },
        sdc_weighted: WeightedCount {
            sum_q64: u128::from(generation * 5 + salt),
            sumsq_q32: u128::from(generation) << 64,
        },
        weight_sum: WeightedCount {
            sum_q64: u128::from(salt) << 96,
            sumsq_q32: u128::from(generation + salt),
        },
    };
    Checkpoint {
        config_hash: 0xC0FF_EE00_0000_0000 | generation,
        generation,
        shard_count: 3,
        dimms: 64,
        epoch_cursor: generation * 17,
        done: (0..3).map(|s| (s, tally(u64::from(s) + 1))).collect(),
    }
}

/// The slot-level model of [`CheckpointStore::save`] under faults:
/// per parity slot, the last committed generation and whether its
/// record is still valid (not torn by a short write, not bit-rotted).
#[derive(Default)]
struct SlotModel {
    slots: [Option<(u64, bool, Checkpoint)>; 2],
}

impl SlotModel {
    /// Mirrors the fault ordering inside `save`: ENOSPC before any byte
    /// lands, fsync/rename failures before the commit, short writes and
    /// bit rot silently corrupting the committed record.
    fn save(&mut self, plan: &IoFaultPlan, ckpt: &Checkpoint) -> Result<(), ()> {
        let g = ckpt.generation;
        if plan.enospc(g) || plan.fsync_fails(g) || plan.rename_fails(g) {
            return Err(());
        }
        let valid = !plan.short_write(g) && !plan.corrupts_record(g);
        self.slots[(g % 2) as usize] = Some((g, valid, ckpt.clone()));
        Ok(())
    }

    /// What `load` must return: the newest valid committed checkpoint,
    /// `fell_back` when any existing slot is corrupt, `None` when no
    /// valid slot exists.
    fn expect_load(&self) -> (Option<&Checkpoint>, bool) {
        let corrupt = self.slots.iter().flatten().any(|&(_, valid, _)| !valid);
        let newest = self
            .slots
            .iter()
            .flatten()
            .filter(|&&(_, valid, _)| valid)
            .max_by_key(|&&(g, _, _)| g)
            .map(|(_, _, c)| c);
        (newest, corrupt)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary fault probabilities, arbitrary seed, a realistic
    /// monotone generation sequence: after every save the store agrees
    /// with the model exactly — loud failure with prior state intact,
    /// or a committed record the CRC layer adjudicates on load. Never a
    /// wrong checkpoint, never silent loss of a committed one.
    #[test]
    fn faulted_saves_load_a_committed_checkpoint_or_nothing(
        seed in any::<u64>(),
        enospc in 0.0f64..1.0,
        short_write in 0.0f64..1.0,
        fsync_fail in 0.0f64..1.0,
        rename_fail in 0.0f64..1.0,
        corrupt_record in 0.0f64..1.0,
        generations in 1u64..10,
    ) {
        let plan = IoFaultPlan {
            seed,
            enospc_prob: enospc,
            short_write_prob: short_write,
            fsync_fail_prob: fsync_fail,
            rename_fail_prob: rename_fail,
            corrupt_record_prob: corrupt_record,
            ..IoFaultPlan::default()
        };
        let dir = TempDir::new("prop");
        let store = CheckpointStore::open_with_faults(&dir.0, "run", Some(plan))
            .expect("open store");
        let mut model = SlotModel::default();
        for g in 1..=generations {
            let ckpt = checkpoint_for(g);
            let real = store.save(&ckpt);
            let expected = model.save(&plan, &ckpt);
            prop_assert_eq!(real.is_ok(), expected.is_ok(),
                "save(gen {}) outcome diverged from the model: {:?}", g, real);
            if let Err(e) = real {
                prop_assert!(e.to_string().contains("injected"),
                    "only injected faults may fail a save in a temp dir: {}", e);
            }
            let (want, fell_back) = model.expect_load();
            match (store.load(), want) {
                (Some(loaded), Some(want)) => {
                    prop_assert_eq!(&loaded.checkpoint, want,
                        "load after gen {} returned the wrong checkpoint", g);
                    prop_assert_eq!(loaded.fell_back, fell_back);
                }
                (None, None) => {}
                (got, want) => prop_assert!(false,
                    "load after gen {}: got {:?}, model wants {:?}",
                    g, got.map(|l| l.checkpoint.generation),
                    want.map(|c| c.generation)),
            }
        }
    }

    /// A plan with every probability at zero is bit-for-bit the
    /// fault-free store: each save commits, each load returns the
    /// newest generation with no fallback.
    #[test]
    fn zero_probability_plans_are_transparent(
        seed in any::<u64>(),
        generations in 1u64..8,
    ) {
        let plan = IoFaultPlan { seed, ..IoFaultPlan::default() };
        let dir = TempDir::new("zero");
        let store = CheckpointStore::open_with_faults(&dir.0, "run", Some(plan))
            .expect("open store");
        for g in 1..=generations {
            store.save(&checkpoint_for(g)).expect("fault-free save");
            let loaded = store.load().expect("fault-free load");
            prop_assert_eq!(loaded.checkpoint, checkpoint_for(g));
            prop_assert!(!loaded.fell_back);
        }
    }
}

/// A small degraded fleet under the aggressive smoke environment, kept
/// tiny so the chaos runs stay fast in debug builds.
fn setup() -> (FleetCode, Environment, FleetConfig) {
    let (env, config) = smoke_setup();
    (
        FleetCode::muse(muse_core::presets::muse_80_69()),
        env,
        FleetConfig {
            dimms: 16,
            threads: 1,
            ..config
        },
    )
}

fn runner(dir: &TempDir) -> RunnerConfig {
    RunnerConfig {
        shards: 4,
        checkpoint_dir: Some(dir.0.clone()),
        checkpoint_prefix: "chaos".to_string(),
        checkpoint_every: 1,
        resume: true,
        backoff_base_ms: 0,
        ..RunnerConfig::default()
    }
}

/// ENOSPC on every checkpoint write: the run fails loudly with the
/// injected error (never silently dropping durability), and a rerun
/// against a healthy disk produces tallies bit-identical to an
/// uninterrupted run.
#[test]
fn enospc_fails_loudly_and_a_healthy_rerun_is_bit_identical() {
    let (code, env, config) = setup();
    let dir = TempDir::new("enospc-run");
    let faults = FaultPlan {
        io: Some(IoFaultPlan {
            enospc_prob: 1.0,
            ..IoFaultPlan::default()
        }),
        ..FaultPlan::default()
    };
    let err = run_sharded(&code, &env, &config, &runner(&dir), Some(&faults))
        .expect_err("a full disk must fail the run, not corrupt it");
    assert!(err.to_string().contains("injected"), "{err}");

    let outcome = run_sharded(&code, &env, &config, &runner(&dir), None).unwrap();
    let baseline = simulate_fleet(&code, &env, &config);
    assert_eq!(outcome.report().unwrap().tally, baseline.tally);
}

/// Torn and bit-rotted checkpoints across an interrupt: the resume
/// either falls back to an older valid generation or starts clean, and
/// in every case the merged tallies are bit-identical to an
/// uninterrupted run — corrupted durability costs recompute time, never
/// correctness.
#[test]
fn torn_and_rotted_checkpoints_resume_bit_identically() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config);
    let io = IoFaultPlan {
        seed: 0x7047_B17F,
        short_write_prob: 0.5,
        corrupt_record_prob: 0.5,
        ..IoFaultPlan::default()
    };
    let faults = FaultPlan {
        io: Some(io),
        ..FaultPlan::default()
    };
    let dir = TempDir::new("torn-resume");
    let first = RunnerConfig {
        stop_after_shards: Some(2),
        ..runner(&dir)
    };
    let outcome = run_sharded(&code, &env, &config, &first, Some(&faults)).unwrap();
    assert!(
        matches!(outcome, ShardedOutcome::Interrupted { .. }),
        "stop_after_shards must interrupt"
    );
    let outcome = run_sharded(&code, &env, &config, &runner(&dir), Some(&faults)).unwrap();
    assert_eq!(
        outcome.report().unwrap().tally,
        baseline.tally,
        "resume through torn/rotted checkpoints must stay bit-identical"
    );
}

/// Hangs and torn writes together: the watchdog cuts the stalls, the
/// CRC layer adjudicates the torn records, and the final tallies are
/// still bit-identical.
#[test]
fn watchdog_and_torn_writes_together_stay_bit_identical() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config);
    let faults = FaultPlan {
        hang_prob: 0.75,
        hang_ms: 300,
        io: Some(IoFaultPlan {
            seed: 0xD06_F00D,
            short_write_prob: 0.4,
            ..IoFaultPlan::default()
        }),
        ..FaultPlan::default()
    };
    let dir = TempDir::new("watchdog-torn");
    let config_run = RunnerConfig {
        shard_timeout_ms: Some(20),
        max_retries: 30,
        ..runner(&dir)
    };
    let outcome = run_sharded(&code, &env, &config, &config_run, Some(&faults)).unwrap();
    let stats = outcome.stats();
    assert!(
        stats.watchdog_kills > 0,
        "the hangs must have tripped the watchdog: {stats:?}"
    );
    assert_eq!(outcome.report().unwrap().tally, baseline.tally);
}
