//! Property tests over the `lifetime-ckpt/v1` codec: arbitrary
//! checkpoints round-trip exactly, and any corruption — truncation at a
//! random point, a random flipped bit — is rejected by the CRC/structure
//! checks rather than decoded into a wrong checkpoint (the invariant the
//! corruption-fallback path of the sharded runner rests on).

use muse_lifetime::{Checkpoint, LifetimeTally};
use proptest::prelude::*;

const MAX_SHARDS: usize = 24;

fn tally_from(fields: &[u64]) -> LifetimeTally {
    LifetimeTally {
        epochs: fields[0],
        degraded_epochs: fields[1],
        corrected_words: fields[2],
        due_words: fields[3],
        sdc_words: fields[4],
        erasure_reads: fields[5],
        devices_retired: fields[6],
        rows_retired: fields[7],
        spare_rebuilds: fields[8],
        data_loss_events: fields[9],
        dimm_replacements: fields[10],
    }
}

fn build(
    config_hash: u64,
    generation: u64,
    shard_count: u32,
    dimms: u64,
    epoch_cursor: u64,
    include: &[bool],
    fields: &[u64],
) -> Checkpoint {
    let done = (0..shard_count as usize)
        .filter(|&s| include[s])
        .map(|s| (s as u32, tally_from(&fields[s * 11..][..11])))
        .collect();
    Checkpoint {
        config_hash,
        generation,
        shard_count,
        dimms,
        epoch_cursor,
        done,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_checkpoints_roundtrip(
        config_hash in any::<u64>(),
        generation in any::<u64>(),
        shard_count in 1u32..=MAX_SHARDS as u32,
        dimms in 1u64..1_000_000,
        epoch_cursor in any::<u64>(),
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(any::<u64>(), MAX_SHARDS * 11..MAX_SHARDS * 11 + 1),
    ) {
        let ckpt = build(config_hash, generation, shard_count, dimms,
            epoch_cursor, &include, &fields);
        let bytes = ckpt.encode();
        prop_assert_eq!(Checkpoint::decode(&bytes).expect("roundtrip"), ckpt);
    }

    #[test]
    fn truncation_never_decodes(
        shard_count in 1u32..=MAX_SHARDS as u32,
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(any::<u64>(), MAX_SHARDS * 11..MAX_SHARDS * 11 + 1),
        cut in any::<u64>(),
    ) {
        let ckpt = build(1, 2, shard_count, 1024, 3, &include, &fields);
        let bytes = ckpt.encode();
        // Any strict prefix must fail (length or CRC check).
        let len = (cut % bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::decode(&bytes[..len]).is_err(),
            "prefix of {} of {} bytes decoded", len, bytes.len());
    }

    #[test]
    fn bitflips_never_decode(
        shard_count in 1u32..=MAX_SHARDS as u32,
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(any::<u64>(), MAX_SHARDS * 11..MAX_SHARDS * 11 + 1),
        flip in any::<u64>(),
    ) {
        let ckpt = build(4, 5, shard_count, 2048, 6, &include, &fields);
        let mut bytes = ckpt.encode();
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Checkpoint::decode(&bytes).is_err(),
            "flip of bit {} in {} bytes decoded", bit, bytes.len());
    }
}
