//! Property tests over the `lifetime-ckpt/v2` codec: arbitrary
//! checkpoints — weighted accumulators included — round-trip exactly,
//! legacy v1 payloads decode with zeroed weighted sums, and any
//! corruption — truncation at a random point, a random flipped bit — is
//! rejected by the CRC/structure checks rather than decoded into a wrong
//! checkpoint (the invariant the corruption-fallback path of the sharded
//! runner rests on).

use muse_lifetime::{Checkpoint, LifetimeTally, WeightedCount};
use proptest::prelude::*;

const MAX_SHARDS: usize = 24;
/// 11 raw counters + 2×u64 halves for each of the 6 weighted u128s.
const FIELDS_PER_SHARD: usize = 23;

fn u128_from(hi: u64, lo: u64) -> u128 {
    (u128::from(hi) << 64) | u128::from(lo)
}

fn tally_from(fields: &[u64]) -> LifetimeTally {
    LifetimeTally {
        epochs: fields[0],
        degraded_epochs: fields[1],
        corrected_words: fields[2],
        due_words: fields[3],
        sdc_words: fields[4],
        erasure_reads: fields[5],
        devices_retired: fields[6],
        rows_retired: fields[7],
        spare_rebuilds: fields[8],
        data_loss_events: fields[9],
        dimm_replacements: fields[10],
        due_weighted: WeightedCount {
            sum_q64: u128_from(fields[11], fields[12]),
            sumsq_q32: u128_from(fields[13], fields[14]),
        },
        sdc_weighted: WeightedCount {
            sum_q64: u128_from(fields[15], fields[16]),
            sumsq_q32: u128_from(fields[17], fields[18]),
        },
        weight_sum: WeightedCount {
            sum_q64: u128_from(fields[19], fields[20]),
            sumsq_q32: u128_from(fields[21], fields[22]),
        },
    }
}

fn build(
    config_hash: u64,
    generation: u64,
    shard_count: u32,
    dimms: u64,
    epoch_cursor: u64,
    include: &[bool],
    fields: &[u64],
) -> Checkpoint {
    let done = (0..shard_count as usize)
        .filter(|&s| include[s])
        .map(|s| {
            (
                s as u32,
                tally_from(&fields[s * FIELDS_PER_SHARD..][..FIELDS_PER_SHARD]),
            )
        })
        .collect();
    Checkpoint {
        config_hash,
        generation,
        shard_count,
        dimms,
        epoch_cursor,
        done,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn arbitrary_checkpoints_roundtrip(
        config_hash in any::<u64>(),
        generation in any::<u64>(),
        shard_count in 1u32..=MAX_SHARDS as u32,
        dimms in 1u64..1_000_000,
        epoch_cursor in any::<u64>(),
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(
            any::<u64>(), MAX_SHARDS * FIELDS_PER_SHARD..MAX_SHARDS * FIELDS_PER_SHARD + 1),
    ) {
        let ckpt = build(config_hash, generation, shard_count, dimms,
            epoch_cursor, &include, &fields);
        let bytes = ckpt.encode();
        prop_assert_eq!(Checkpoint::decode(&bytes).expect("roundtrip"), ckpt);
    }

    #[test]
    fn v1_payloads_decode_with_weighted_sums_zeroed(
        shard_count in 1u32..=MAX_SHARDS as u32,
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(
            any::<u64>(), MAX_SHARDS * FIELDS_PER_SHARD..MAX_SHARDS * FIELDS_PER_SHARD + 1),
    ) {
        let ckpt = build(7, 8, shard_count, 4096, 9, &include, &fields);
        let decoded = Checkpoint::decode(&ckpt.encode_v1()).expect("v1 decode");
        let mut expect = ckpt.clone();
        for (_, t) in &mut expect.done {
            t.due_weighted = WeightedCount::default();
            t.sdc_weighted = WeightedCount::default();
            t.weight_sum = WeightedCount::default();
        }
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn truncation_never_decodes(
        shard_count in 1u32..=MAX_SHARDS as u32,
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(
            any::<u64>(), MAX_SHARDS * FIELDS_PER_SHARD..MAX_SHARDS * FIELDS_PER_SHARD + 1),
        cut in any::<u64>(),
        legacy in any::<bool>(),
    ) {
        let ckpt = build(1, 2, shard_count, 1024, 3, &include, &fields);
        let bytes = if legacy { ckpt.encode_v1() } else { ckpt.encode() };
        // Any strict prefix must fail (length or CRC check).
        let len = (cut % bytes.len() as u64) as usize;
        prop_assert!(Checkpoint::decode(&bytes[..len]).is_err(),
            "prefix of {} of {} bytes decoded", len, bytes.len());
    }

    #[test]
    fn bitflips_never_decode(
        shard_count in 1u32..=MAX_SHARDS as u32,
        include in prop::collection::vec(any::<bool>(), MAX_SHARDS..MAX_SHARDS + 1),
        fields in prop::collection::vec(
            any::<u64>(), MAX_SHARDS * FIELDS_PER_SHARD..MAX_SHARDS * FIELDS_PER_SHARD + 1),
        flip in any::<u64>(),
        legacy in any::<bool>(),
    ) {
        let ckpt = build(4, 5, shard_count, 2048, 6, &include, &fields);
        let mut bytes = if legacy { ckpt.encode_v1() } else { ckpt.encode() };
        let bit = (flip % (bytes.len() as u64 * 8)) as usize;
        bytes[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(Checkpoint::decode(&bytes).is_err(),
            "flip of bit {} in {} bytes decoded", bit, bytes.len());
    }
}
