//! The fleet simulator's determinism contract and behavioural sanity.
//!
//! Tallies must be a pure function of `(code, environment, config)` —
//! bit-identical at any thread count — and the scenario matrix must
//! reproduce the qualitative reliability ordering the codes are built for.

use muse_lifetime::{
    chipkill_heavy, field_environments, retention_asymmetric, scenario_codes, simulate_fleet,
    transient_dominant, Estimator, FleetCode, FleetConfig,
};
use muse_rs::RsMemoryCode;

fn small(threads: usize) -> FleetConfig {
    FleetConfig {
        dimms: 96,
        years: 3.0,
        scrub_interval_hours: 24.0,
        dimms_per_machine: 4,
        seed: 0xD177,
        threads,
        ..FleetConfig::default()
    }
}

#[test]
fn identical_across_thread_counts() {
    for code in scenario_codes() {
        let env = chipkill_heavy();
        let serial = simulate_fleet(&code, &env, &small(1));
        for threads in [2, 3, 0] {
            let parallel = simulate_fleet(&code, &env, &small(threads));
            assert_eq!(
                serial.tally,
                parallel.tally,
                "{} at {threads} threads",
                code.name()
            );
        }
    }
}

#[test]
fn weighted_tallies_identical_across_thread_counts() {
    // The importance-sampling path must satisfy the same contract as the
    // raw counts: the fixed-point weighted accumulators — not just the
    // integer counters — are bit-identical at any thread count.
    for code in scenario_codes() {
        let env = chipkill_heavy();
        let config = |threads| FleetConfig {
            estimator: Estimator::importance(16.0),
            ..small(threads)
        };
        let serial = simulate_fleet(&code, &env, &config(1));
        for threads in [2, 4, 0] {
            let parallel = simulate_fleet(&code, &env, &config(threads));
            assert_eq!(
                serial.tally,
                parallel.tally,
                "{} weighted tallies at {threads} threads",
                code.name()
            );
            assert_eq!(
                serial.tally.due_weighted, parallel.tally.due_weighted,
                "weighted DUE accumulator drifted"
            );
        }
        // The biased run really biased something: weights were recorded.
        assert!(serial.tally.weight_sum.sum() > 0.0);
    }
}

#[test]
fn field_environments_are_live_and_distinct() {
    let envs = field_environments();
    assert_eq!(envs.len(), 2, "two field-calibrated rate sets ship");
    let code = FleetCode::muse(muse_core::presets::muse_144_132());
    let mut tallies = Vec::new();
    for env in &envs {
        let report = simulate_fleet(&code, env, &small(0));
        assert!(
            report.tally.corrected_words > 0,
            "{} produces activity",
            env.name
        );
        tallies.push(report.tally);
    }
    assert_ne!(
        tallies[0], tallies[1],
        "the two field environments must not alias"
    );
}

#[test]
fn degraded_fleet_exercises_erasure_reads() {
    // Start every DIMM with one retired chip: all disturbed reads must go
    // through the erasure decoder.
    let config = FleetConfig {
        initial_failed_devices: 1,
        ..small(0)
    };
    let code = FleetCode::muse(muse_core::presets::muse_80_69());
    let report = simulate_fleet(&code, &transient_dominant(), &config);
    assert_eq!(report.degraded_fraction, 1.0, "every epoch is degraded");
    assert!(report.tally.erasure_reads > 0, "transients hit the decoder");
    // A lone transient under one erased chip consumes the margin: some
    // reads fail (DUE or SDC), none are silently lost without any events.
    assert!(report.tally.due_words + report.tally.sdc_words > 0);
}

#[test]
fn rs_t2_survives_more_failures_than_t1() {
    // In a chipkill-heavy fleet with no spares, the t=2 RS code tolerates
    // four erased symbols where t=1 tolerates two: fewer data-loss events.
    let config = FleetConfig {
        dimms: 512,
        years: 5.0,
        seed: 0x1234,
        ..small(0)
    };
    let env = chipkill_heavy();
    let t1 = simulate_fleet(
        &FleetCode::rs(RsMemoryCode::new(8, 144, 1).unwrap(), 4),
        &env,
        &config,
    );
    let t2 = simulate_fleet(
        &FleetCode::rs(RsMemoryCode::new(8, 144, 2).unwrap(), 4),
        &env,
        &config,
    );
    assert!(
        t2.tally.data_loss_events <= t1.tally.data_loss_events,
        "t2 {} vs t1 {}",
        t2.tally.data_loss_events,
        t1.tally.data_loss_events
    );
}

#[test]
fn sparing_prevents_degraded_operation() {
    let env = chipkill_heavy();
    let degraded = simulate_fleet(
        &FleetCode::muse(muse_core::presets::muse_144_132()),
        &env,
        &FleetConfig {
            spares_per_dimm: 0,
            ..small(0)
        },
    );
    let spared = simulate_fleet(
        &FleetCode::muse(muse_core::presets::muse_144_132()),
        &env,
        &FleetConfig {
            spares_per_dimm: 4,
            ..small(0)
        },
    );
    assert!(spared.degraded_fraction < degraded.degraded_fraction);
    assert!(spared.tally.spare_rebuilds > 0);
    assert_eq!(degraded.tally.spare_rebuilds, 0);
}

#[test]
fn environments_shape_the_failure_mix() {
    let code = FleetCode::muse(muse_core::presets::muse_80_69());
    let config = FleetConfig {
        dimms: 256,
        ..small(0)
    };
    let heavy = simulate_fleet(&code, &chipkill_heavy(), &config);
    let soft = simulate_fleet(&code, &transient_dominant(), &config);
    let retention = simulate_fleet(&code, &retention_asymmetric(), &config);
    assert!(
        heavy.tally.devices_retired > soft.tally.devices_retired,
        "chipkill-heavy retires more chips"
    );
    assert!(
        soft.tally.corrected_words > 0 && retention.tally.corrected_words > 0,
        "transients get scrubbed"
    );
}
