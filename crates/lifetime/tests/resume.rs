//! The sharded runner's hard guarantee: interrupt at any point and
//! resume — at any thread count, with any shard count, through injected
//! kills and corrupted checkpoints — and the merged tallies are
//! bit-identical to an uninterrupted [`simulate_fleet`] run.

use std::path::PathBuf;

use muse_lifetime::{
    run_sharded, simulate_fleet, smoke_setup, CheckpointStore, Corruption, Environment, Estimator,
    FaultPlan, FleetCode, FleetConfig, LifetimeTally, RunnerConfig, RunnerError, ShardedOutcome,
};

/// A small degraded fleet under the aggressive smoke environment so every
/// classification path is hit, shrunk further so the boundary sweep stays
/// fast in debug builds.
fn setup() -> (FleetCode, Environment, FleetConfig) {
    let (env, config) = smoke_setup();
    (
        FleetCode::muse(muse_core::presets::muse_80_69()),
        env,
        FleetConfig {
            dimms: 24,
            threads: 1,
            ..config
        },
    )
}

/// A fresh per-test checkpoint directory (removed on drop).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("muse-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn runner(dir: &TempDir) -> RunnerConfig {
    RunnerConfig {
        shards: 6,
        checkpoint_dir: Some(dir.0.clone()),
        backoff_base_ms: 0,
        ..RunnerConfig::default()
    }
}

fn complete(outcome: ShardedOutcome) -> muse_lifetime::LifetimeReport {
    match outcome {
        ShardedOutcome::Complete { report, .. } => report,
        ShardedOutcome::Interrupted { .. } => panic!("run did not complete"),
    }
}

#[test]
fn sharded_equals_unsharded_at_any_shard_and_thread_count() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    for shards in [1u32, 3, 6, 0] {
        for threads in [1usize, 4] {
            let config = FleetConfig { threads, ..config };
            let outcome = run_sharded(
                &code,
                &env,
                &config,
                &RunnerConfig {
                    shards,
                    ..RunnerConfig::default()
                },
                None,
            )
            .expect("sharded run");
            assert_eq!(
                complete(outcome).tally,
                baseline,
                "shards={shards} threads={threads}"
            );
        }
    }
}

#[test]
fn interrupt_at_every_shard_boundary_resumes_bit_identically() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    for stop_after in 0..6u64 {
        for &resume_threads in &[1usize, 4] {
            let dir = TempDir::new(&format!("sweep-{stop_after}-{resume_threads}"));
            let first = run_sharded(
                &code,
                &env,
                &config,
                &RunnerConfig {
                    stop_after_shards: Some(stop_after),
                    ..runner(&dir)
                },
                None,
            )
            .expect("interrupted run");
            assert!(
                matches!(first, ShardedOutcome::Interrupted { .. }),
                "stop_after={stop_after} should interrupt"
            );
            // Resume at a different thread count than the first leg ran.
            let resumed_config = FleetConfig {
                threads: resume_threads,
                ..config
            };
            let outcome = run_sharded(
                &code,
                &env,
                &resumed_config,
                &RunnerConfig {
                    resume: true,
                    ..runner(&dir)
                },
                None,
            )
            .expect("resumed run");
            let stats = outcome.stats().clone();
            assert_eq!(
                complete(outcome).tally,
                baseline,
                "stop_after={stop_after} resume_threads={resume_threads}"
            );
            if stop_after > 0 {
                let info = stats.resume.expect("checkpoint was loaded");
                assert_eq!(info.shards_done as u64, stop_after);
                assert_eq!(info.total_shards, 6);
                assert!(!info.fell_back);
                assert_eq!(stats.shards_resumed as u64, stop_after);
                assert_eq!(stats.shards_run as u64, 6 - stop_after);
            }
        }
    }
}

#[test]
fn is_interrupt_at_every_shard_boundary_resumes_bit_identically() {
    // The weighted (importance-sampling) path rides the same
    // `lifetime-ckpt/v2` records: interrupting after every shard
    // boundary and resuming — at a different thread count — must
    // reproduce the uninterrupted run's weighted accumulators bit for
    // bit, not just the raw counters.
    let (code, env, config) = setup();
    let config = FleetConfig {
        estimator: Estimator::importance(16.0),
        ..config
    };
    let baseline = simulate_fleet(&code, &env, &config).tally;
    assert!(
        baseline.weight_sum.sum() > 0.0,
        "the biased run recorded weights"
    );
    for stop_after in 0..6u64 {
        for &resume_threads in &[1usize, 4] {
            let dir = TempDir::new(&format!("is-sweep-{stop_after}-{resume_threads}"));
            let first = run_sharded(
                &code,
                &env,
                &config,
                &RunnerConfig {
                    stop_after_shards: Some(stop_after),
                    ..runner(&dir)
                },
                None,
            )
            .expect("interrupted run");
            assert!(matches!(first, ShardedOutcome::Interrupted { .. }));
            let resumed_config = FleetConfig {
                threads: resume_threads,
                ..config
            };
            let outcome = run_sharded(
                &code,
                &env,
                &resumed_config,
                &RunnerConfig {
                    resume: true,
                    ..runner(&dir)
                },
                None,
            )
            .expect("resumed run");
            let resumed = complete(outcome).tally;
            assert_eq!(
                resumed, baseline,
                "stop_after={stop_after} resume_threads={resume_threads}"
            );
            assert_eq!(
                resumed.sdc_weighted, baseline.sdc_weighted,
                "weighted SDC accumulator drifted across the resume"
            );
        }
    }
}

#[test]
fn v1_checkpoint_written_by_old_code_resumes() {
    // Naive checkpoints written by the pre-estimator build were 96-byte
    // `lifetime-ckpt/v1` records. Rewrite the newest slot with the exact
    // bytes such a build would have produced (`encode_v1`) and resume:
    // the v2 reader must accept them and converge bit-identically.
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    let dir = TempDir::new("v1-compat");
    let first = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            stop_after_shards: Some(3),
            ..runner(&dir)
        },
        None,
    )
    .expect("interrupted run");
    assert!(matches!(first, ShardedOutcome::Interrupted { .. }));
    let store = CheckpointStore::open(&dir.0, "fleet").expect("store");
    let loaded = store.load().expect("checkpoint present");
    assert!(!loaded.fell_back);
    let legacy = loaded.checkpoint.encode_v1();
    std::fs::write(store.slot_path(loaded.checkpoint.generation), legacy).expect("rewrite as v1");
    let outcome = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            resume: true,
            ..runner(&dir)
        },
        None,
    )
    .expect("resumed from v1 bytes");
    let stats = outcome.stats().clone();
    let info = stats.resume.expect("v1 checkpoint was loaded");
    assert_eq!(info.shards_done, 3);
    assert!(!info.fell_back, "a valid v1 payload is not corruption");
    assert_eq!(complete(outcome).tally, baseline);
}

#[test]
fn repeated_interruptions_still_converge() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    let dir = TempDir::new("repeat");
    // One shard per invocation: six interruptions, then completion.
    let mut resume = false;
    for _ in 0..6 {
        let outcome = run_sharded(
            &code,
            &env,
            &config,
            &RunnerConfig {
                resume,
                stop_after_shards: Some(1),
                ..runner(&dir)
            },
            None,
        )
        .expect("leg");
        resume = true;
        if let ShardedOutcome::Complete { report, .. } = outcome {
            assert_eq!(report.tally, baseline);
            return;
        }
    }
    let outcome = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            resume: true,
            ..runner(&dir)
        },
        None,
    )
    .expect("final leg");
    assert_eq!(complete(outcome).tally, baseline);
}

#[test]
fn injected_kills_retry_and_preserve_tallies() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    let faults = FaultPlan {
        seed: 0xDEAD,
        kill_prob: 0.6,
        ..FaultPlan::default()
    };
    let outcome = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            shards: 6,
            backoff_base_ms: 0,
            max_retries: 16,
            ..RunnerConfig::default()
        },
        Some(&faults),
    )
    .expect("kills within the retry budget");
    let stats = outcome.stats().clone();
    assert!(stats.retries > 0, "kill_prob=0.6 over 6 shards never fired");
    assert_eq!(complete(outcome).tally, baseline);
}

#[test]
fn kill_every_attempt_exhausts_retries() {
    let (code, env, config) = setup();
    let faults = FaultPlan {
        kill_prob: 1.0,
        ..FaultPlan::default()
    };
    let err = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            shards: 2,
            max_retries: 2,
            backoff_base_ms: 0,
            ..RunnerConfig::default()
        },
        Some(&faults),
    )
    .expect_err("every attempt is killed");
    match err {
        RunnerError::ShardFailed { shard: 0, attempts } => assert_eq!(attempts, 3),
        other => panic!("expected ShardFailed, got {other}"),
    }
}

#[test]
fn corrupt_newest_generation_falls_back_and_recomputes() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    for kind in [Corruption::Truncate, Corruption::BitFlip] {
        let dir = TempDir::new(&format!("corrupt-{kind:?}"));
        // Four shards done ⇒ generations 1..=4 written; corrupt gen 4
        // right after its save, as a crash mid-write would.
        let faults = FaultPlan {
            corrupt_generation: Some((4, kind)),
            ..FaultPlan::default()
        };
        let first = run_sharded(
            &code,
            &env,
            &config,
            &RunnerConfig {
                stop_after_shards: Some(4),
                ..runner(&dir)
            },
            Some(&faults),
        )
        .expect("interrupted run");
        assert!(matches!(first, ShardedOutcome::Interrupted { .. }));
        let outcome = run_sharded(
            &code,
            &env,
            &config,
            &RunnerConfig {
                resume: true,
                ..runner(&dir)
            },
            None,
        )
        .expect("resumed run");
        let stats = outcome.stats().clone();
        let info = stats.resume.expect("fell back to generation 3");
        assert!(info.fell_back, "{kind:?}: newest generation was corrupt");
        assert_eq!(info.generation, 3);
        assert_eq!(info.shards_done, 3);
        assert_eq!(stats.shards_run, 3, "{kind:?}: shard 4 is recomputed");
        assert_eq!(complete(outcome).tally, baseline, "{kind:?}");
    }
}

#[test]
fn both_generations_corrupt_restarts_clean() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    let dir = TempDir::new("both-corrupt");
    let first = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            stop_after_shards: Some(4),
            ..runner(&dir)
        },
        None,
    )
    .expect("interrupted run");
    assert!(matches!(first, ShardedOutcome::Interrupted { .. }));
    let store = CheckpointStore::open(&dir.0, "fleet").expect("store");
    store.corrupt(3, Corruption::Truncate).expect("corrupt g3");
    store.corrupt(4, Corruption::BitFlip).expect("corrupt g4");
    let outcome = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            resume: true,
            ..runner(&dir)
        },
        None,
    )
    .expect("resumed run");
    let stats = outcome.stats().clone();
    assert!(stats.resume.is_none(), "nothing valid to resume from");
    assert_eq!(stats.shards_run, 6, "everything recomputed");
    assert_eq!(complete(outcome).tally, baseline);
}

#[test]
fn config_change_is_refused_but_thread_change_is_not() {
    let (code, env, config) = setup();
    let dir = TempDir::new("hash");
    run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            stop_after_shards: Some(2),
            ..runner(&dir)
        },
        None,
    )
    .expect("interrupted run");
    // A different seed is a different experiment: refuse.
    let reseeded = FleetConfig {
        seed: config.seed ^ 1,
        ..config
    };
    let err = run_sharded(
        &code,
        &env,
        &reseeded,
        &RunnerConfig {
            resume: true,
            ..runner(&dir)
        },
        None,
    )
    .expect_err("seed change must not resume");
    assert!(
        matches!(err, RunnerError::ConfigHashMismatch { .. }),
        "got {err}"
    );
    // A different thread count is the same experiment: resume fine.
    let rethreaded = FleetConfig {
        threads: 4,
        ..config
    };
    let outcome = run_sharded(
        &code,
        &env,
        &rethreaded,
        &RunnerConfig {
            resume: true,
            ..runner(&dir)
        },
        None,
    )
    .expect("thread change resumes");
    assert_eq!(
        complete(outcome).tally,
        simulate_fleet(&code, &env, &config).tally
    );
}

#[test]
fn resume_adopts_the_checkpoints_shard_plan() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    let dir = TempDir::new("adopt");
    run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            stop_after_shards: Some(3),
            ..runner(&dir)
        },
        None,
    )
    .expect("interrupted at 3 of 6");
    // Ask for a different shard count on resume; the stored plan wins so
    // the recorded partials stay aligned to their DIMM ranges.
    let outcome = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            shards: 2,
            resume: true,
            checkpoint_dir: Some(dir.0.clone()),
            ..RunnerConfig::default()
        },
        None,
    )
    .expect("resumed run");
    let stats = outcome.stats().clone();
    assert_eq!(stats.total_shards, 6, "checkpoint's plan adopted");
    assert_eq!(complete(outcome).tally, baseline);
}

#[test]
fn checkpoint_every_batches_saves() {
    let (code, env, config) = setup();
    let baseline = simulate_fleet(&code, &env, &config).tally;
    let dir = TempDir::new("batched");
    let outcome = run_sharded(
        &code,
        &env,
        &config,
        &RunnerConfig {
            checkpoint_every: 4,
            ..runner(&dir)
        },
        None,
    )
    .expect("batched run");
    let stats = outcome.stats().clone();
    // 6 shards at one save per 4 completions: one batch save + the final
    // flush of the remainder.
    assert_eq!(stats.checkpoint_writes, 2);
    assert_eq!(complete(outcome).tally, baseline);
    // A tally partial survives on disk and resumes.
    let mut total = LifetimeTally::default();
    let loaded = CheckpointStore::open(&dir.0, "fleet")
        .expect("store")
        .load()
        .expect("final checkpoint present");
    for (_, t) in &loaded.checkpoint.done {
        use muse_faultsim::Tally;
        total.merge(*t);
    }
    assert_eq!(total, baseline);
}
