//! Property tests of the likelihood-ratio accounting behind the
//! importance-sampling estimator:
//!
//! - the expectation of the weight under the biased measure is exactly 1
//!   (checked analytically: `Σ pmf_biased(k) · lr(k) = Σ pmf_nominal(k)`),
//! - likelihood ratios are finite and non-negative everywhere, and
//!   strictly positive wherever both measures carry mass,
//! - [`boosted_chance`] returns the exact branch factor for arbitrary
//!   probabilities and bias factors, and
//! - a bias factor of exactly 1.0 reproduces the naive fleet tallies
//!   **bit-identically**, with the weighted accumulators holding the
//!   exact fixed-point image of the raw counts.

use muse_lifetime::estimator::{binomial_pmf, boosted_chance, BiasedCount};
use muse_lifetime::{scenario_codes, simulate_fleet, smoke_setup, Estimator, WeightedCount};
use proptest::prelude::*;

/// The extra-arrival probability the sampler actually uses — mirrors the
/// (deliberately private) `EXTRA_P_CAP = 0.5` clamp in the estimator, so
/// this test also pins that constant.
fn p_extra(p: f64, bias: f64) -> f64 {
    ((bias - 1.0) * p).min(0.5)
}

/// The biased count's pmf: `Binomial(n, p) ⊛ Binomial(n, p_extra)`.
fn biased_pmf(n: u32, p: f64, bias: f64) -> Vec<f64> {
    let nominal = binomial_pmf(n, p);
    let extra = binomial_pmf(n, p_extra(p, bias));
    let mut conv = vec![0.0; nominal.len() + extra.len() - 1];
    for (i, &a) in nominal.iter().enumerate() {
        for (j, &b) in extra.iter().enumerate() {
            conv[i + j] += a * b;
        }
    }
    conv
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn expected_weight_is_one_under_the_biased_measure(
        n in 1u32..=64,
        p in 0.0f64..0.5,
        bias in 1.0f64..1000.0,
    ) {
        let bc = BiasedCount::new(n, p, bias);
        if p_extra(p, bias) <= 0.0 {
            // Inert inflation: every ratio is exactly 1.
            for k in 0..=2 * n {
                prop_assert_eq!(bc.likelihood(k), 1.0);
            }
        } else {
            let conv = biased_pmf(n, p, bias);
            let expectation: f64 = conv
                .iter()
                .enumerate()
                .map(|(k, &pb)| pb * bc.likelihood(k as u32))
                .sum();
            prop_assert!(
                (expectation - 1.0).abs() < 1e-8,
                "n={} p={} bias={}: E[w]={}", n, p, bias, expectation
            );
        }
    }

    #[test]
    fn likelihood_ratios_are_finite_and_positive_on_support(
        n in 1u32..=64,
        p in 1e-9f64..0.5,
        bias in 1.0f64..1000.0,
    ) {
        let bc = BiasedCount::new(n, p, bias);
        let nominal = binomial_pmf(n, p);
        let conv = biased_pmf(n, p, bias);
        for k in 0..conv.len() + 4 {
            let lr = bc.likelihood(k as u32);
            prop_assert!(lr.is_finite() && lr >= 0.0, "lr({})={}", k, lr);
            let nom_mass = nominal.get(k).copied().unwrap_or(0.0);
            if nom_mass > 0.0 && conv.get(k).copied().unwrap_or(0.0) > 0.0 {
                prop_assert!(lr > 0.0, "lr({})=0 on nominal support", k);
            }
        }
    }

    #[test]
    fn boosted_chance_factor_is_the_exact_branch_ratio(
        p in 1e-12f64..1.0,
        bias in 1.0f64..1e6,
        seed in any::<u64>(),
    ) {
        let mut rng = muse_faultsim::Rng::seeded(seed);
        let boosted = (p * bias).min(0.5).max(p);
        let (hit, factor) = boosted_chance(&mut rng, p, bias);
        prop_assert!(factor.is_finite() && factor > 0.0);
        let expect = if hit { p / boosted } else { (1.0 - p) / (1.0 - boosted) };
        prop_assert_eq!(factor, expect);
        if hit {
            // Hits are over-sampled, so their weight can only shrink.
            prop_assert!(factor <= 1.0, "hit factor exceeds 1: {}", factor);
        }
    }
}

proptest! {
    // Fleet runs are the expensive case: fewer, still plenty to sweep
    // seeds and codes.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bias_one_reproduces_naive_tallies_bit_identically(
        seed in any::<u64>(),
        code_idx in 0usize..4,
        dimms in 2u64..6,
    ) {
        let (env, mut config) = smoke_setup();
        config.seed = seed;
        config.dimms = dimms;
        config.years = 0.2;
        config.threads = 1;
        let code = &scenario_codes()[code_idx];

        let naive = simulate_fleet(code, &env, &config).tally;
        config.estimator = Estimator::importance(1.0);
        let is = simulate_fleet(code, &env, &config).tally;

        // Raw counters: identical draw-for-draw.
        let mut stripped = is;
        stripped.due_weighted = WeightedCount::default();
        stripped.sdc_weighted = WeightedCount::default();
        stripped.weight_sum = WeightedCount::default();
        prop_assert_eq!(stripped, naive);

        // Weighted accumulators: the exact fixed-point image of the raw
        // counts (every weight is exactly 1.0, integers quantize exactly).
        let due_events = naive.due_words + naive.data_loss_events;
        prop_assert_eq!(is.due_weighted.sum(), due_events as f64);
        prop_assert_eq!(is.sdc_weighted.sum(), naive.sdc_words as f64);
        prop_assert_eq!(is.weight_sum.sum(), dimms as f64);
    }
}
