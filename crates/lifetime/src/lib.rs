//! Fleet-lifetime reliability simulation with erasure-mode degraded
//! operation.
//!
//! The per-word Monte-Carlo studies in `muse-faultsim` answer "what happens
//! to one read under `k` simultaneous device errors"; this crate answers
//! the question a deployment actually asks: **DUE, SDC, and repair-action
//! rates per machine-year** for a fleet of DIMMs over a multi-year horizon,
//! where chips fail permanently, the controller learns which chip died, and
//! the code keeps running in *erasure mode* on the surviving symbols
//! (`MuseCode::recover_erasures` / `RsCode::decode_erasures` semantics, run
//! in residue / error-value space).
//!
//! # Model
//!
//! * A fleet of [`FleetConfig::dimms`] DIMMs is simulated independently
//!   over [`FleetConfig::years`], in epochs of one scrub interval.
//! * Permanent faults (stuck bit / row multi-bit / whole device, at
//!   [`muse_faultsim::FailureMode`] FIT rates scaled per
//!   [`Environment`]) and transient upsets arrive as Poisson processes per
//!   device.
//! * A whole-device failure is detected by the next scrub or demand read;
//!   the device then either consumes a spare (rebuild pass through the
//!   erasure decoder) or joins the *erased set*: the DIMM runs degraded,
//!   and every subsequent disturbed read is classified against the
//!   degraded code with **combined error-and-erasure decoding** — a
//!   transient under an erased chip is corrected when the budget allows
//!   (`2e + ν ≤ 2t` for RS; the unique-explanation ELC analogue for
//!   MUSE) instead of flagging a DUE. Failures beyond the code's erasure
//!   capacity are data-loss events (DIMM replacement).
//! * Classification never materializes a codeword: every read goes
//!   through the unified syndrome-domain backend
//!   ([`muse_core::Classifier`], wrapped here as [`FleetBackend`]) —
//!   MUSE on the [`muse_core::SyndromeKernel`] residue algebra plus the
//!   [`muse_core::ErasureTable`] combined solve, Reed-Solomon on
//!   error-domain GF syndromes
//!   ([`muse_rs::RsCode::locate_errors`] /
//!   [`muse_rs::RsCode::decode_combined`]). The wide decoders survive as
//!   property-tested oracles (`src/classify.rs` tests,
//!   `muse-core/tests/erasure_equivalence.rs`).
//!
//! Everything is deterministic: epoch `e` of DIMM `d` draws only from the
//! counter-based stream [`muse_faultsim::Rng::for_cell`]`(seed, d, e)`, so
//! tallies are **bit-identical at any thread count**.
//!
//! # Examples
//!
//! ```
//! use muse_lifetime::{simulate_fleet, FleetCode, FleetConfig};
//!
//! let code = FleetCode::muse(muse_core::presets::muse_80_69());
//! let env = muse_lifetime::chipkill_heavy();
//! let config = FleetConfig {
//!     dimms: 64,
//!     years: 2.0,
//!     ..FleetConfig::default()
//! };
//! let report = simulate_fleet(&code, &env, &config);
//! assert_eq!(report.tally.epochs, 64 * config.epochs());
//! // Determinism contract: same tallies at any worker count.
//! let serial = simulate_fleet(&code, &env, &FleetConfig { threads: 1, ..config });
//! assert_eq!(report.tally, serial.tally);
//! ```

#![deny(missing_docs)]

mod checkpoint;
mod classify;
pub mod estimator;
mod iofault;
mod shard;
mod sim;
mod supervisor;
pub mod telemetry;

pub use checkpoint::{
    config_hash, crc32, Checkpoint, CheckpointError, CheckpointStore, Corruption, Loaded,
};
pub use classify::{FleetBackend, FleetContext};
pub use estimator::{Estimator, RateEstimate, WeightedCount};
pub use iofault::{injected_io_error, IoFaultPlan};
pub use muse_core::{Classifier, Entropy, MuseClassifier, Strike, WordRead};
pub use muse_rs::RsClassifier;
pub use shard::ShardPlan;
pub use supervisor::{
    retry_backoff_ms, run_sharded, run_sharded_with, FaultPlan, ResumeInfo, RunStats, RunnerConfig,
    RunnerError, ShardedOutcome,
};
pub use telemetry::{cell_label, FleetTelemetry};

use muse_core::MuseCode;
use muse_faultsim::Tally;
use muse_rs::RsMemoryCode;

/// A code under fleet simulation.
#[derive(Debug, Clone)]
pub enum FleetCode {
    /// A MUSE code (must carry its [`muse_core::SyndromeKernel`]).
    Muse(
        /// The code (boxed: a constructed `MuseCode` holds its kernel
        /// tables and dwarfs the RS variant).
        Box<MuseCode>,
    ),
    /// A Reed-Solomon memory code over physical devices of
    /// `device_bits` each (devices must nest inside RS symbols).
    Rs {
        /// The bit-level RS code.
        code: RsMemoryCode,
        /// Physical device width in bits (x4 ⇒ 4).
        device_bits: u32,
    },
}

impl FleetCode {
    /// Wraps a MUSE code, validating that its syndrome kernel exists.
    ///
    /// # Panics
    ///
    /// Panics if the code's layout is outside the kernel's tabulation
    /// limits — the fleet hot path has no wide fallback.
    pub fn muse(code: MuseCode) -> Self {
        assert!(
            code.kernel().is_some(),
            "{} carries no syndrome kernel; the fleet simulator requires one",
            code.name()
        );
        Self::Muse(Box::new(code))
    }

    /// Wraps an RS memory code, validating the fleet geometry (whole
    /// symbols, devices nested in symbols).
    ///
    /// # Panics
    ///
    /// Panics on geometries with a shortened top symbol or devices
    /// straddling symbols.
    pub fn rs(code: RsMemoryCode, device_bits: u32) -> Self {
        let _ = RsClassifier::new(&code, device_bits); // validates
        Self::Rs { code, device_bits }
    }

    /// Display name, e.g. `MUSE(144,132)` or `RS(144,128) t=1`.
    pub fn name(&self) -> String {
        match self {
            Self::Muse(code) => code.name().to_string(),
            Self::Rs { code, .. } => format!("{} t={}", code.name(), code.inner().t()),
        }
    }

    /// Number of physical devices a codeword spans.
    pub fn devices(&self) -> usize {
        match self {
            Self::Muse(code) => code.symbol_map().num_symbols(),
            Self::Rs { code, device_bits } => (code.n_bits() / device_bits) as usize,
        }
    }

    /// Canonical encoding for [`config_hash`]: a variant tag followed by
    /// the complete code identity — the MUSE spec string (layout,
    /// weights, moduli), or the RS geometry `(symbol_bits, n_bits, t,
    /// device_bits)`.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Self::Muse(code) => {
                let mut out = vec![0u8];
                out.extend_from_slice(code.to_spec_string().as_bytes());
                out
            }
            Self::Rs { code, device_bits } => {
                let mut out = vec![1u8];
                out.extend_from_slice(&code.symbol_bits().to_le_bytes());
                out.extend_from_slice(&code.n_bits().to_le_bytes());
                out.extend_from_slice(&(code.inner().t() as u32).to_le_bytes());
                out.extend_from_slice(&device_bits.to_le_bytes());
                out
            }
        }
    }
}

/// A fault environment: per-mode rate scaling over the base
/// [`muse_faultsim::FailureMode`] FIT rates plus the transient-upset rate.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Display name.
    pub name: &'static str,
    /// Transient (scrub-repairable) single-bit upsets, FIT per device.
    pub transient_fit_per_device: f64,
    /// Scale factors over `FailureMode::fit_per_device()` for
    /// `[SingleBit, SingleDeviceMultiBit, WholeDevice]`.
    pub permanent_scale: [f64; 3],
    /// Retention-style asymmetry: transient flips only discharge `1→0`
    /// (Section III-C), halving their effective rate on uniform data.
    pub asymmetric_transients: bool,
}

impl Environment {
    /// Canonical encoding for [`config_hash`]: name (length-prefixed)
    /// and every rate field, floats as IEEE-754 bit patterns.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.transient_fit_per_device.to_bits().to_le_bytes());
        for scale in self.permanent_scale {
            out.extend_from_slice(&scale.to_bits().to_le_bytes());
        }
        out.push(self.asymmetric_transients as u8);
        out
    }
}

/// Transient-dominant environment: soft errors far outnumber permanent
/// faults (well-behaved server fleet).
pub fn transient_dominant() -> Environment {
    Environment {
        name: "transient-dominant",
        transient_fit_per_device: 2500.0,
        permanent_scale: [0.5, 0.25, 0.4],
        asymmetric_transients: false,
    }
}

/// ChipKill-heavy environment: elevated whole-device failure rates (aging
/// fleet / harsh conditions) — the erasure-mode stress case.
pub fn chipkill_heavy() -> Environment {
    Environment {
        name: "chipkill-heavy",
        transient_fit_per_device: 400.0,
        permanent_scale: [1.0, 2.0, 25.0],
        asymmetric_transients: false,
    }
}

/// Retention/asymmetric environment: extended refresh intervals make
/// one-directional (`1→0`) retention upsets the dominant transient mode.
pub fn retention_asymmetric() -> Environment {
    Environment {
        name: "retention-asymmetric",
        transient_fit_per_device: 2000.0,
        permanent_scale: [0.5, 1.0, 2.0],
        asymmetric_transients: true,
    }
}

/// The three standard environments, in presentation order.
pub fn scenario_environments() -> Vec<Environment> {
    vec![
        transient_dominant(),
        chipkill_heavy(),
        retention_asymmetric(),
    ]
}

/// Field-calibrated DDR3 server environment, after the large-scale DRAM
/// field studies of Sridharan et al. (SC'12/SC'13): ~30 FIT/device of
/// permanent faults split roughly half single-bit, the rest row/column
/// faults and bank/whole-chip failures, with transients at a comparable
/// per-device rate. The study's per-bank/row/column/pin taxonomy is
/// mapped onto this model's three modes: single-bit → `SingleBit`,
/// row + column + pin → `SingleDeviceMultiBit`, bank + multi-bank +
/// whole-chip → `WholeDevice`.
pub fn field_ddr3() -> Environment {
    Environment {
        name: "field-ddr3",
        transient_fit_per_device: 29.0,
        // 32 / 11 / 22 FIT over the base [35, 20, 5] FIT rates.
        permanent_scale: [0.91, 0.55, 4.4],
        asymmetric_transients: false,
    }
}

/// Field-calibrated DDR4 hyperscale environment: per-device permanent
/// rates several times below the DDR3 study (denser parts, better
/// screening) with a larger whole-device share, and a transient rate
/// dominated by high-altitude-equivalent neutron flux scaled to sea
/// level. Mapping onto the three model modes as in [`field_ddr3`].
pub fn field_ddr4() -> Environment {
    Environment {
        name: "field-ddr4",
        transient_fit_per_device: 55.0,
        // 10 / 8 / 4.5 FIT over the base [35, 20, 5] FIT rates.
        permanent_scale: [0.29, 0.4, 0.9],
        asymmetric_transients: false,
    }
}

/// The field-calibrated environments, in presentation order.
pub fn field_environments() -> Vec<Environment> {
    vec![field_ddr3(), field_ddr4()]
}

///// Every standard environment: the three synthetic scenario rates
/// followed by the field-calibrated sets — the environment axis of
/// [`run_matrix`].
pub fn all_environments() -> Vec<Environment> {
    let mut envs = scenario_environments();
    envs.extend(field_environments());
    envs
}

/// The four standard codes of the scenario matrix: both MUSE ChipKill
/// presets and the RS baseline at `t = 1` and `t = 2`.
pub fn scenario_codes() -> Vec<FleetCode> {
    vec![
        FleetCode::muse(muse_core::presets::muse_144_132()),
        FleetCode::muse(muse_core::presets::muse_80_69()),
        FleetCode::rs(RsMemoryCode::new(8, 144, 1).expect("geometry"), 4),
        FleetCode::rs(RsMemoryCode::new(8, 144, 2).expect("geometry"), 4),
    ]
}

/// Fleet and policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// DIMMs in the fleet (each simulated independently).
    pub dimms: u64,
    /// Simulated horizon in years.
    pub years: f64,
    /// Scrub interval — the epoch length — in hours.
    pub scrub_interval_hours: f64,
    /// Codewords per DIMM (scales per-word collision probabilities).
    pub words_per_dimm: u64,
    /// Words affected by one row/column multi-bit fault.
    pub row_words: u32,
    /// DIMMs per machine (converts DIMM-years into machine-years).
    pub dimms_per_machine: u32,
    /// Chip-sparing budget per DIMM; once exhausted, failed chips put the
    /// DIMM into persistent degraded (erasure-mode) operation.
    pub spares_per_dimm: u32,
    /// Mean hours until demand traffic detects a dead chip (caps the
    /// undetected-exposure window; the scrub always catches it too).
    pub demand_read_hours: f64,
    /// Devices retired before the simulation starts (every DIMM begins
    /// degraded) — a benchmark/testing hook for erasure-mode throughput.
    pub initial_failed_devices: u32,
    /// PRNG seed.
    pub seed: u64,
    /// Worker threads (0 ⇒ one per CPU). Tallies are bit-identical at any
    /// value.
    pub threads: usize,
    /// Rate estimator: naive Monte Carlo, or importance sampling with
    /// likelihood-ratio reweighting (see [`estimator`]).
    pub estimator: Estimator,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            dimms: 1024,
            years: 5.0,
            scrub_interval_hours: 12.0,
            words_per_dimm: 1 << 23,
            row_words: 512,
            dimms_per_machine: 8,
            spares_per_dimm: 0,
            demand_read_hours: 1.0,
            initial_failed_devices: 0,
            seed: 0xF1EE_7155,
            threads: 0,
            estimator: Estimator::Naive,
        }
    }
}

impl FleetConfig {
    /// Epochs (scrub intervals) per DIMM over the horizon.
    pub fn epochs(&self) -> u64 {
        (self.years * sim::HOURS_PER_YEAR / self.scrub_interval_hours).ceil() as u64
    }

    /// Machine-years covered by the whole fleet run.
    pub fn machine_years(&self) -> f64 {
        self.dimms as f64 * self.years / self.dimms_per_machine as f64
    }

    /// Canonical encoding for [`config_hash`]: every field in
    /// declaration order, floats as IEEE-754 bit patterns — **except**
    /// [`threads`](Self::threads). Tallies are bit-identical at any
    /// thread count, so a checkpoint must stay valid when the worker
    /// count changes (e.g. resuming on a different machine).
    ///
    /// The [`estimator`](Self::estimator) is appended **only when
    /// non-naive**: a naive config encodes exactly as it did before the
    /// estimator field existed, so pre-estimator hashes — and every
    /// `lifetime-ckpt/v1` checkpoint carrying one — stay resumable,
    /// while a biased run can never silently adopt a naive checkpoint
    /// (or vice versa).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.dimms.to_le_bytes());
        out.extend_from_slice(&self.years.to_bits().to_le_bytes());
        out.extend_from_slice(&self.scrub_interval_hours.to_bits().to_le_bytes());
        out.extend_from_slice(&self.words_per_dimm.to_le_bytes());
        out.extend_from_slice(&self.row_words.to_le_bytes());
        out.extend_from_slice(&self.dimms_per_machine.to_le_bytes());
        out.extend_from_slice(&self.spares_per_dimm.to_le_bytes());
        out.extend_from_slice(&self.demand_read_hours.to_bits().to_le_bytes());
        out.extend_from_slice(&self.initial_failed_devices.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.estimator.canonical_bytes());
        out
    }
}

/// Raw fleet-run tallies (merged across DIMMs in DIMM order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifetimeTally {
    /// Epochs simulated (DIMMs × epochs, minus nothing — replacement
    /// restarts count their epochs too).
    pub epochs: u64,
    /// Epochs a DIMM spent in degraded (erasure-mode) operation.
    pub degraded_epochs: u64,
    /// Event words that read back correct (corrected transients/permanent
    /// faults, successful degraded reads). Routine clean reads are not
    /// counted.
    pub corrected_words: u64,
    /// Words read back detected-uncorrectable.
    pub due_words: u64,
    /// Words read back silently wrong.
    pub sdc_words: u64,
    /// Degraded-mode word classifications (erasure-decoder invocations
    /// with a disturbance present) — the events/sec unit.
    pub erasure_reads: u64,
    /// Whole-device failures detected and retired.
    pub devices_retired: u64,
    /// Row/column multi-bit faults mapped out.
    pub rows_retired: u64,
    /// Chip-sparing rebuild passes completed.
    pub spare_rebuilds: u64,
    /// Failures beyond the code's erasure capacity (fleet data loss).
    pub data_loss_events: u64,
    /// DIMMs replaced after data loss.
    pub dimm_replacements: u64,
    /// Likelihood-weighted DUE totals (word DUEs + data-loss events),
    /// one per-DIMM total per trajectory. Zero under the naive
    /// estimator; the fixed-point accumulation keeps merges
    /// bit-identical under any fleet partition (see
    /// [`estimator::WeightedCount`]).
    pub due_weighted: WeightedCount,
    /// Likelihood-weighted SDC totals (see [`Self::due_weighted`]).
    pub sdc_weighted: WeightedCount,
    /// Final full-trajectory likelihood ratios, one per DIMM — a
    /// diagnostic: under the biased measure each has expectation 1, and
    /// [`WeightedCount::effective_n`] gives the effective sample size.
    pub weight_sum: WeightedCount,
}

impl Tally for LifetimeTally {
    fn merge(&mut self, other: Self) {
        self.epochs += other.epochs;
        self.degraded_epochs += other.degraded_epochs;
        self.corrected_words += other.corrected_words;
        self.due_words += other.due_words;
        self.sdc_words += other.sdc_words;
        self.erasure_reads += other.erasure_reads;
        self.devices_retired += other.devices_retired;
        self.rows_retired += other.rows_retired;
        self.spare_rebuilds += other.spare_rebuilds;
        self.data_loss_events += other.data_loss_events;
        self.dimm_replacements += other.dimm_replacements;
        self.due_weighted.merge(other.due_weighted);
        self.sdc_weighted.merge(other.sdc_weighted);
        self.weight_sum.merge(other.weight_sum);
    }
}

/// One fleet run, reduced to machine-year rates.
#[derive(Debug, Clone)]
pub struct LifetimeReport {
    /// Code under test.
    pub code: String,
    /// Environment name.
    pub environment: String,
    /// Machine-years the run covers.
    pub machine_years: f64,
    /// Detected-uncorrectable events (word DUEs + data-loss events) per
    /// machine-year.
    pub due_per_machine_year: f64,
    /// Silent data corruptions per machine-year.
    pub sdc_per_machine_year: f64,
    /// Repair actions (device retirements, row map-outs, spare rebuilds,
    /// DIMM replacements) per machine-year.
    pub repairs_per_machine_year: f64,
    /// Fraction of DIMM-epochs spent in degraded (erasure-mode) operation.
    pub degraded_fraction: f64,
    /// The estimator that produced the DUE/SDC rates.
    pub estimator: Estimator,
    /// DUE rate with its 95% confidence interval (Poisson for naive
    /// runs, across-DIMM CLT for importance-sampling runs; the
    /// rule-of-three upper bound when zero events were observed).
    pub due_estimate: RateEstimate,
    /// SDC rate with its 95% confidence interval (see
    /// [`Self::due_estimate`]).
    pub sdc_estimate: RateEstimate,
    /// The raw tallies.
    pub tally: LifetimeTally,
}

impl LifetimeReport {
    /// Rebuilds the report a run under `(code, env, config)` would have
    /// produced for `tally` — the reconstruction path of the service's
    /// result cache: rates and CIs are pure functions of the tally and
    /// the config, so a cached tally yields a report bit-identical to
    /// the run that computed it.
    pub fn from_tally(
        code: &FleetCode,
        env: &Environment,
        config: &FleetConfig,
        tally: LifetimeTally,
    ) -> Self {
        Self::new(code, env, config, tally)
    }

    fn new(code: &FleetCode, env: &Environment, config: &FleetConfig, t: LifetimeTally) -> Self {
        let my = config.machine_years();
        let due_events = t.due_words + t.data_loss_events;
        let (due_estimate, sdc_estimate) = match config.estimator {
            Estimator::Naive => (
                RateEstimate::from_count(due_events, my),
                RateEstimate::from_count(t.sdc_words, my),
            ),
            Estimator::Importance { .. } => (
                RateEstimate::from_weighted(due_events, t.due_weighted, config.dimms, my),
                RateEstimate::from_weighted(t.sdc_words, t.sdc_weighted, config.dimms, my),
            ),
        };
        Self {
            code: code.name(),
            environment: env.name.to_string(),
            machine_years: my,
            due_per_machine_year: due_estimate.mean,
            sdc_per_machine_year: sdc_estimate.mean,
            repairs_per_machine_year: (t.devices_retired
                + t.rows_retired
                + t.spare_rebuilds
                + t.dimm_replacements) as f64
                / my,
            degraded_fraction: if t.epochs == 0 {
                0.0
            } else {
                t.degraded_epochs as f64 / t.epochs as f64
            },
            estimator: config.estimator,
            due_estimate,
            sdc_estimate,
            tally: t,
        }
    }
}

/// Simulates one code under one environment across the whole fleet.
///
/// Deterministic: bit-identical tallies at any [`FleetConfig::threads`].
///
/// # Examples
///
/// ```
/// use muse_lifetime::{simulate_fleet, transient_dominant, FleetCode, FleetConfig};
///
/// let code = FleetCode::rs(muse_rs::RsMemoryCode::new(8, 144, 2).unwrap(), 4);
/// let config = FleetConfig {
///     dimms: 16,
///     years: 1.0,
///     scrub_interval_hours: 48.0,
///     initial_failed_devices: 1, // every DIMM starts degraded
///     ..FleetConfig::default()
/// };
/// let report = simulate_fleet(&code, &transient_dominant(), &config);
/// assert_eq!(report.degraded_fraction, 1.0);
/// // Combined error-and-erasure decoding: a t = 2 code corrects the
/// // transients striking degraded DIMMs (2e + ν = 3 ≤ 2t) instead of
/// // flagging DUEs.
/// assert!(report.tally.corrected_words > 0);
/// assert_eq!(report.tally, simulate_fleet(&code, &transient_dominant(),
///     &FleetConfig { threads: 1, ..config }).tally);
/// ```
pub fn simulate_fleet(code: &FleetCode, env: &Environment, config: &FleetConfig) -> LifetimeReport {
    let tally = sim::run_fleet(code, env, config);
    LifetimeReport::new(code, env, config, tally)
}

/// The canonical CI smoke setup: a small fleet that starts degraded (one
/// retired chip per DIMM) under an aggressive synthetic environment, so
/// every classification path — erasure reads, DUEs, SDCs, retirements —
/// is exercised in under a second. Consumed by both
/// `tests/regression.rs` and `bench_lifetime --smoke` so the pins cannot
/// drift apart.
pub fn smoke_setup() -> (Environment, FleetConfig) {
    (
        Environment {
            name: "smoke",
            transient_fit_per_device: 2.0e5,
            permanent_scale: [2.0, 2.0, 40.0],
            asymmetric_transients: false,
        },
        FleetConfig {
            dimms: 32,
            years: 1.0,
            scrub_interval_hours: 24.0,
            dimms_per_machine: 4,
            spares_per_dimm: 0,
            initial_failed_devices: 1,
            seed: 0x500E,
            threads: 0,
            ..FleetConfig::default()
        },
    )
}

/// One pinned [`smoke_setup`] row: the tallies [`scenario_codes`] entry
/// `code` must reproduce exactly. Named fields so adding a pin (or a
/// field) is one edit here, not lockstep tuple-index surgery across
/// every consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmokeExpectation {
    /// Code display name ([`FleetCode::name`]).
    pub code: &'static str,
    /// Expected [`LifetimeTally::due_words`].
    pub due_words: u64,
    /// Expected [`LifetimeTally::sdc_words`].
    pub sdc_words: u64,
    /// Expected [`LifetimeTally::corrected_words`].
    pub corrected_words: u64,
    /// Expected [`LifetimeTally::erasure_reads`].
    pub erasure_reads: u64,
}

/// The pinned [`smoke_setup`] tallies, one row per [`scenario_codes`]
/// entry. Any intentional change to RNG streams, arrival sampling, or
/// erasure classification must re-baseline these (and say so in
/// CHANGES.md).
///
/// Re-baselined when degraded reads switched to combined
/// error-and-erasure decoding: the `t = 2` RS rows now correct every
/// single transient under one erased chip (previously all DUEs), and the
/// MUSE rows recover the unique-explanation fraction; `t = 1` RS rows are
/// unchanged (one erasure consumes the whole `2t = 2` budget).
pub fn smoke_expected() -> Vec<SmokeExpectation> {
    vec![
        SmokeExpectation {
            code: "MUSE(144,132)",
            due_words: 1781,
            sdc_words: 2,
            corrected_words: 239,
            erasure_reads: 2022,
        },
        SmokeExpectation {
            code: "MUSE(80,69)",
            due_words: 981,
            sdc_words: 1,
            corrected_words: 105,
            erasure_reads: 1087,
        },
        SmokeExpectation {
            code: "RS(144,128) t=1",
            due_words: 1935,
            sdc_words: 33,
            corrected_words: 57,
            erasure_reads: 2025,
        },
        SmokeExpectation {
            code: "RS(144,112) t=2",
            due_words: 0,
            sdc_words: 0,
            corrected_words: 2025,
            erasure_reads: 2025,
        },
    ]
}

/// Checks a batch of [`smoke_setup`] reports — one per [`scenario_codes`]
/// entry, in order — against the [`smoke_expected`] pins. Shared by the
/// regression tests, `bench_lifetime --smoke`, and the CLI's crash-
/// recovery smoke so all three compare against the same baselines.
///
/// # Errors
///
/// A human-readable description of the first mismatching row (or a
/// row-count mismatch).
pub fn verify_smoke(reports: &[LifetimeReport]) -> Result<(), String> {
    let pins = smoke_expected();
    if reports.len() != pins.len() {
        return Err(format!(
            "expected {} smoke reports, got {}",
            pins.len(),
            reports.len()
        ));
    }
    for (report, pin) in reports.iter().zip(&pins) {
        if report.code != pin.code {
            return Err(format!(
                "smoke row order: expected {}, got {}",
                pin.code, report.code
            ));
        }
        let t = &report.tally;
        let got = (t.due_words, t.sdc_words, t.corrected_words, t.erasure_reads);
        let want = (
            pin.due_words,
            pin.sdc_words,
            pin.corrected_words,
            pin.erasure_reads,
        );
        if got != want {
            return Err(format!(
                "{}: (due, sdc, corrected, erasure_reads) = {got:?}, pinned {want:?}",
                pin.code
            ));
        }
    }
    Ok(())
}

/// Runs the full scenario matrix — [`scenario_codes`] ×
/// [`all_environments`] — under one fleet configuration.
pub fn run_matrix(config: &FleetConfig) -> Vec<LifetimeReport> {
    let codes = scenario_codes();
    let envs = all_environments();
    let mut reports = Vec::with_capacity(codes.len() * envs.len());
    for code in &codes {
        for env in &envs {
            reports.push(simulate_fleet(code, env, config));
        }
    }
    reports
}
