//! Observability hooks for the sharded supervisor.
//!
//! A [`FleetTelemetry`] bundles everything
//! [`run_sharded_with`](crate::run_sharded_with) may report through:
//! a `muse-trace/v1` [`Tracer`], a [`Metrics`] registry (plus an optional
//! textfile path snapshotted after every shard), a warning callback
//! (shard retries, corruption fallbacks), and a heartbeat callback fed
//! [`ProgressSnapshot`]s. Every hook is optional and **strictly
//! observational**: nothing here touches an RNG stream or a tally, so
//! runs with telemetry enabled stay bit-identical to runs without it
//! (`tests/telemetry.rs` enforces this at 1 and 4 threads).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use muse_telemetry::{Counter, Gauge, Histogram, Metrics, ProgressSnapshot, Tracer};

use crate::estimator::EXTRA_P_CAP;
use crate::{Estimator, FleetConfig, LifetimeTally, RateEstimate};

/// Callback invoked with one warning line (shard retry, corruption
/// fallback).
pub type WarnFn<'a> = dyn Fn(&str) + 'a;

/// Callback invoked with each progress heartbeat.
pub type HeartbeatFn<'a> = dyn Fn(&ProgressSnapshot) + 'a;

/// Observability sinks for one sharded run. All fields optional;
/// [`FleetTelemetry::default`] observes nothing.
#[derive(Default)]
pub struct FleetTelemetry<'a> {
    /// Structured `muse-trace/v1` event sink.
    pub tracer: Option<&'a Tracer>,
    /// Metrics registry to record counters/histograms into.
    pub metrics: Option<&'a Metrics>,
    /// Snapshot the registry to this Prometheus textfile after every
    /// shard and at run end (requires [`Self::metrics`]).
    pub metrics_path: Option<PathBuf>,
    /// Run label used in trace events and heartbeat lines (e.g. the
    /// `code@env` cell prefix).
    pub label: String,
    /// Warning sink (shard retries, checkpoint corruption fallbacks).
    pub warn: Option<Box<WarnFn<'a>>>,
    /// Heartbeat sink, called after every completed shard.
    pub heartbeat: Option<Box<HeartbeatFn<'a>>>,
}

impl std::fmt::Debug for FleetTelemetry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetTelemetry")
            .field("tracer", &self.tracer.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("metrics_path", &self.metrics_path)
            .field("label", &self.label)
            .field("warn", &self.warn.is_some())
            .field("heartbeat", &self.heartbeat.is_some())
            .finish()
    }
}

impl<'a> FleetTelemetry<'a> {
    /// A telemetry bundle that observes nothing (what plain
    /// [`run_sharded`](crate::run_sharded) uses).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Emits one warning line, if a sink is attached.
    pub(crate) fn warn(&self, line: &str) {
        if let Some(warn) = &self.warn {
            warn(line);
        }
    }

    /// Trace events dropped so far (0 without a tracer).
    pub(crate) fn dropped_events(&self) -> u64 {
        self.tracer.map_or(0, |t| t.dropped())
    }

    /// Trace-sink write errors so far (0 without a tracer).
    pub(crate) fn io_errors(&self) -> u64 {
        self.tracer.map_or(0, |t| t.io_errors())
    }

    /// Writes the metrics textfile snapshot, when configured. Snapshot
    /// failures are reported as warnings, never as run failures; the
    /// `false` return lets the supervisor bump its `io_errors` counter
    /// so the loss is visible in the metrics themselves.
    pub(crate) fn snapshot_metrics(&self) -> bool {
        if let (Some(metrics), Some(path)) = (self.metrics, &self.metrics_path) {
            if let Err(e) = metrics.write_textfile(path) {
                self.warn(&format!(
                    "warning: metrics snapshot to {} failed: {e}",
                    path.display()
                ));
                return false;
            }
        }
        true
    }
}

/// The supervisor's instruments, resolved once per run from the registry
/// (resolution takes the registry lock; the instruments themselves are
/// lock-free).
pub(crate) struct RunInstruments {
    pub shards_completed: Arc<Counter>,
    pub shard_retries: Arc<Counter>,
    pub watchdog_kills: Arc<Counter>,
    pub io_errors: Arc<Counter>,
    pub checkpoint_writes: Arc<Counter>,
    pub dimms_simulated: Arc<Counter>,
    pub sim_trials: Arc<Counter>,
    pub due_events: Arc<Counter>,
    pub sdc_events: Arc<Counter>,
    pub shard_wall_ms: Arc<Histogram>,
    pub checkpoint_write_ms: Arc<Histogram>,
    pub trials_per_sec: Arc<Gauge>,
    pub machine_years: Arc<Gauge>,
    pub due_weighted_sum: Arc<Gauge>,
    pub sdc_weighted_sum: Arc<Gauge>,
    pub trace_dropped: Arc<Gauge>,
    pub trace_io_errors: Arc<Gauge>,
}

impl RunInstruments {
    pub fn resolve(metrics: &Metrics) -> Self {
        Self {
            shards_completed: metrics.counter(
                "muse_lifetime_shards_completed_total",
                "Shards completed by the sharded supervisor",
            ),
            shard_retries: metrics.counter(
                "muse_lifetime_shard_retries_total",
                "Shard attempts that failed and were retried",
            ),
            watchdog_kills: metrics.counter(
                "muse_lifetime_watchdog_kills_total",
                "Shard attempts killed by the per-shard watchdog timeout",
            ),
            io_errors: metrics.counter(
                "muse_io_errors_total",
                "Telemetry-writer I/O errors (metrics snapshots that failed to land)",
            ),
            checkpoint_writes: metrics.counter(
                "muse_lifetime_checkpoint_writes_total",
                "Checkpoint generations durably written",
            ),
            dimms_simulated: metrics.counter(
                "muse_lifetime_dimms_simulated_total",
                "DIMM lifetimes simulated by completed shards",
            ),
            sim_trials: metrics.counter(
                "muse_sim_trials_total",
                "Monte-Carlo trials completed by the simulation engine",
            ),
            due_events: metrics.counter(
                "muse_lifetime_due_events_total",
                "Detected-uncorrectable events (word DUEs plus data-loss events)",
            ),
            sdc_events: metrics.counter(
                "muse_lifetime_sdc_events_total",
                "Silent-data-corruption words observed",
            ),
            shard_wall_ms: metrics.histogram(
                "muse_lifetime_shard_wall_ms",
                "Wall-clock per completed shard, milliseconds",
            ),
            checkpoint_write_ms: metrics.histogram(
                "muse_lifetime_checkpoint_write_ms",
                "Checkpoint write+rename latency, milliseconds",
            ),
            trials_per_sec: metrics.gauge(
                "muse_sim_trials_per_second",
                "Engine trial throughput over the last completed shard",
            ),
            machine_years: metrics.gauge(
                "muse_lifetime_machine_years",
                "Machine-years covered by completed shards",
            ),
            due_weighted_sum: metrics.gauge(
                "muse_lifetime_due_weighted_sum",
                "Likelihood-weighted DUE total of completed shards",
            ),
            sdc_weighted_sum: metrics.gauge(
                "muse_lifetime_sdc_weighted_sum",
                "Likelihood-weighted SDC total of completed shards",
            ),
            trace_dropped: metrics.gauge(
                "muse_trace_dropped_events",
                "Trace events dropped under backpressure this run",
            ),
            trace_io_errors: metrics.gauge(
                "muse_trace_io_errors",
                "Trace-sink write errors this run (events lost to a failing sink)",
            ),
        }
    }
}

/// The biased arrival channels whose requested inflation exceeds
/// [`EXTRA_P_CAP`]: `(channel, requested_bias, cap)` triples ready for
/// `weight_cap_saturated` events. Empty under the naive estimator.
pub(crate) fn saturated_channels(
    arrivals: &[(&'static str, f64)],
    estimator: Estimator,
) -> Vec<(&'static str, f64, f64)> {
    match estimator {
        Estimator::Naive => Vec::new(),
        Estimator::Importance { bias } => arrivals
            .iter()
            .filter(|&&(_, p)| (bias - 1.0) * p > EXTRA_P_CAP)
            .map(|&(name, _)| (name, bias, EXTRA_P_CAP))
            .collect(),
    }
}

/// The 95% CI half-widths `(due, sdc)` per machine-year of a partial
/// tally over `dimms_done` DIMMs — the live convergence signal of the
/// heartbeat (a future "run until CI < target" stopping rule reads the
/// same numbers).
pub(crate) fn ci_half_widths(
    config: &FleetConfig,
    tally: &LifetimeTally,
    dimms_done: u64,
) -> (f64, f64) {
    let machine_years = dimms_done as f64 * config.years / f64::from(config.dimms_per_machine);
    if machine_years <= 0.0 {
        return (f64::INFINITY, f64::INFINITY);
    }
    let due_events = tally.due_words + tally.data_loss_events;
    let (due, sdc) = match config.estimator {
        Estimator::Naive => (
            RateEstimate::from_count(due_events, machine_years),
            RateEstimate::from_count(tally.sdc_words, machine_years),
        ),
        Estimator::Importance { .. } => (
            RateEstimate::from_weighted(due_events, tally.due_weighted, dimms_done, machine_years),
            RateEstimate::from_weighted(
                tally.sdc_words,
                tally.sdc_weighted,
                dimms_done,
                machine_years,
            ),
        ),
    };
    ((due.hi - due.lo) / 2.0, (sdc.hi - sdc.lo) / 2.0)
}

/// Standard per-cell trace/metrics label: `<code>@<env>` with whitespace
/// collapsed — also used as the heartbeat prefix.
pub fn cell_label(code: &str, env: &str) -> String {
    format!("{}@{}", code.replace(' ', ""), env)
}

/// Duration in whole milliseconds, saturating.
pub(crate) fn elapsed_ms(since: std::time::Instant) -> u64 {
    u64::try_from(since.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// `true` when `path`'s parent directory exists (used to fail fast on
/// metrics/trace paths before a long run starts).
pub fn parent_exists(path: &Path) -> bool {
    match path.parent() {
        Some(parent) if !parent.as_os_str().is_empty() => parent.is_dir(),
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_flags_only_clipped_channels() {
        let arrivals = [("single", 0.2), ("multi", 1e-6), ("whole", 0.4)];
        assert!(saturated_channels(&arrivals, Estimator::Naive).is_empty());
        // bias 4: extra p = 3·p → single 0.6 > 0.5 (clipped), multi tiny,
        // whole 1.2 > 0.5 (clipped).
        let sat = saturated_channels(&arrivals, Estimator::importance(4.0));
        assert_eq!(sat.len(), 2);
        assert_eq!(sat[0].0, "single");
        assert_eq!(sat[1].0, "whole");
        assert_eq!(sat[0].2, EXTRA_P_CAP);
        // bias 1.0 never saturates anything.
        assert!(saturated_channels(&arrivals, Estimator::importance(1.0)).is_empty());
    }

    #[test]
    fn ci_half_widths_shrink_with_coverage() {
        let config = FleetConfig {
            dimms: 1000,
            years: 1.0,
            dimms_per_machine: 4,
            ..FleetConfig::default()
        };
        let tally = LifetimeTally {
            due_words: 40,
            sdc_words: 4,
            ..LifetimeTally::default()
        };
        let (due_early, sdc_early) = ci_half_widths(&config, &tally, 100);
        let (due_late, sdc_late) = ci_half_widths(&config, &tally, 1000);
        assert!(due_late < due_early, "{due_late} !< {due_early}");
        assert!(sdc_late < sdc_early);
        // Zero coverage: no estimate yet.
        let (due, _) = ci_half_widths(&config, &tally, 0);
        assert!(due.is_infinite());
    }

    #[test]
    fn labels_are_whitespace_free() {
        assert_eq!(
            cell_label("RS(144,128) t=1", "smoke"),
            "RS(144,128)t=1@smoke"
        );
    }
}
