//! Deterministic fleet sharding: a fixed partition of the DIMM index
//! space into contiguous, near-equal ranges.
//!
//! Because every `(DIMM, epoch)` draws from its own counter-based stream
//! ([`muse_faultsim::Rng::for_cell`]), shard boundaries carry no
//! randomness: a shard's tally is bit-identical to the same DIMM range of
//! an unsharded run, and merging shard tallies (plain field-wise sums)
//! reproduces the unsharded total exactly — in any execution order, at
//! any thread count, across any interrupt/resume pattern.

use std::ops::Range;

/// A fixed partition of `dimms` DIMMs into `count` contiguous shards.
///
/// Shard `s` covers `dimms/count` DIMMs, with the first `dimms % count`
/// shards one DIMM larger — every shard is nonempty and the ranges tile
/// `0..dimms` exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    dimms: u64,
    count: u32,
}

impl ShardPlan {
    /// A plan splitting `dimms` into `count` shards. `count == 0` picks a
    /// default (16, capped at one DIMM per shard); any `count` is clamped
    /// to `[1, dimms]` so no shard is empty.
    pub fn new(dimms: u64, count: u32) -> Self {
        let want = if count == 0 { 16 } else { count as u64 };
        Self {
            dimms,
            count: want.clamp(1, dimms.max(1)) as u32,
        }
    }

    /// Number of shards.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Total DIMMs the plan partitions.
    pub fn dimms(&self) -> u64 {
        self.dimms
    }

    /// The global DIMM-index range of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.count()`.
    pub fn range(&self, shard: u32) -> Range<u64> {
        assert!(shard < self.count, "shard {shard} of {}", self.count);
        let base = self.dimms / self.count as u64;
        let rem = self.dimms % self.count as u64;
        let s = shard as u64;
        let lo = s * base + s.min(rem);
        lo..lo + base + u64::from(s < rem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_exactly() {
        for (dimms, count) in [(10u64, 4u32), (5, 4), (1, 16), (1024, 16), (7, 7), (96, 5)] {
            let plan = ShardPlan::new(dimms, count);
            let mut cursor = 0u64;
            for s in 0..plan.count() {
                let r = plan.range(s);
                assert_eq!(r.start, cursor, "dimms={dimms} count={count} s={s}");
                assert!(r.end > r.start, "empty shard {s}");
                cursor = r.end;
            }
            assert_eq!(cursor, dimms);
        }
    }

    #[test]
    fn zero_count_defaults_and_clamps() {
        assert_eq!(ShardPlan::new(1024, 0).count(), 16);
        assert_eq!(ShardPlan::new(3, 0).count(), 3);
        assert_eq!(ShardPlan::new(3, 100).count(), 3);
        assert_eq!(ShardPlan::new(0, 0).count(), 1);
    }
}
