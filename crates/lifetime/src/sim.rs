//! The discrete-event fleet engine: per-DIMM epoch walks on counter-based
//! `(DIMM, epoch)` RNG streams, batched over [`SimEngine`] workers.
//!
//! # Event model (one epoch = one scrub interval)
//!
//! 1. **Arrivals.** Permanent faults arrive per device as Poisson processes
//!    (sampled as per-epoch binomial counts over the device population —
//!    at most one arrival per device per epoch, an error `< p²`):
//!    stuck single bits, row/column multi-bit faults, and whole-device
//!    (ChipKill) failures, at [`FailureMode`] FIT rates scaled by the
//!    [`Environment`](crate::Environment). Transient single-bit upsets
//!    arrive the same way at the environment's transient rate.
//! 2. **Exposure.** A whole-device failure is *undetected* from its arrival
//!    until the earlier of the next scrub and a demand read
//!    (exponentially distributed latency). Words read in that window carry
//!    the dead chip's garbage as an extra, unknown device error.
//! 3. **Classification.** Only reads that can produce a non-trivial
//!    outcome are classified (everything else is tallied analytically):
//!    transient-hit words on a degraded DIMM, multi-fault overlaps
//!    (transient × transient, transient × stuck word, transient × dying
//!    chip), and the scrub reads of freshly detected permanent faults.
//!    Classification runs through the unified syndrome-domain backend
//!    ([`FleetBackend`], a [`muse_core::Classifier`]) — never
//!    materializing a word. Degraded reads use **combined**
//!    error-and-erasure decoding: Forney-style `2e + ν ≤ 2t` for RS, the
//!    erasure-solve-plus-ELC-correction analogue for MUSE.
//! 4. **Repair.** At the epoch boundary each detected whole-device failure
//!    either consumes a spare (one full-fleet rebuild pass through the
//!    erasure decoder, then the chip is replaced), or — with no spares
//!    left — transitions the DIMM into *degraded operation*: the device
//!    joins the erased set and every later read decodes around it. A
//!    failure that exceeds the code's erasure capacity (or lands on an
//!    unrecoverable device combination) is a data-loss event: the DIMM is
//!    replaced and restarts fresh.
//!
//! # Determinism
//!
//! Epoch `e` of DIMM `d` draws exclusively from
//! [`Rng::for_cell`]`(seed, d, e)`; per-DIMM tallies merge in DIMM order.
//! Results are bit-identical at any thread count
//! (`tests/determinism.rs`).

use muse_core::{Classifier, Strike, WordRead};
use muse_faultsim::{Bounded32, CountCdf, FailureMode, Rng, SimEngine};

use crate::classify::{FleetBackend, FleetContext};
use crate::{Environment, FleetCode, FleetConfig, LifetimeTally};

/// Hours per (Julian) year, the FIT-rate convention.
pub(crate) const HOURS_PER_YEAR: f64 = 8766.0;

/// Precomputed per-run sampling constants.
pub(crate) struct Plan {
    epochs: u64,
    cdf_single: CountCdf,
    cdf_multi: CountCdf,
    cdf_whole: CountCdf,
    cdf_trans: CountCdf,
    device_pick: Bounded32,
    words: f64,
    row_words: u32,
    /// Mean demand-read detection latency, in epoch units.
    demand_epochs: f64,
    asym: bool,
}

impl Plan {
    pub fn new(code: &FleetCode, env: &Environment, config: &FleetConfig) -> Self {
        let devices = code.devices() as u32;
        let hours = config.scrub_interval_hours;
        let p_mode =
            |mode: FailureMode, scale: f64| (mode.fit_per_device() * scale * hours / 1e9).min(1.0);
        let [s_single, s_multi, s_whole] = env.permanent_scale;
        Self {
            epochs: config.epochs(),
            cdf_single: CountCdf::binomial(devices, p_mode(FailureMode::SingleBit, s_single)),
            cdf_multi: CountCdf::binomial(
                devices,
                p_mode(FailureMode::SingleDeviceMultiBit, s_multi),
            ),
            cdf_whole: CountCdf::binomial(devices, p_mode(FailureMode::WholeDevice, s_whole)),
            cdf_trans: CountCdf::binomial(
                devices,
                (env.transient_fit_per_device * hours / 1e9).min(1.0),
            ),
            device_pick: Bounded32::new(devices),
            words: config.words_per_dimm as f64,
            row_words: config.row_words,
            demand_epochs: config.demand_read_hours / hours,
            asym: env.asymmetric_transients,
        }
    }
}

/// Per-DIMM mutable state.
struct DimmState {
    /// Retired (known-failed) devices, sorted — the erased set.
    erased: Vec<u16>,
    /// The decode context resolved for `erased`.
    ctx: FleetContext,
    /// Device of each word carrying a stuck permanent bit.
    stuck: Vec<u16>,
    spares_left: u32,
}

impl DimmState {
    fn fresh(backend: &FleetBackend<'_>, config: &FleetConfig) -> Self {
        let erased: Vec<u16> = (0..config.initial_failed_devices as u16).collect();
        let ctx = backend
            .resolve(&erased)
            .expect("initial_failed_devices exceeds the code's erasure capacity");
        Self {
            erased,
            ctx,
            stuck: Vec::new(),
            spares_left: config.spares_per_dimm,
        }
    }
}

fn record(tally: &mut LifetimeTally, out: WordRead) {
    match out {
        WordRead::Correct => tally.corrected_words += 1,
        WordRead::Due => tally.due_words += 1,
        WordRead::Sdc => tally.sdc_words += 1,
    }
}

/// Runs the whole fleet and merges the tallies (bit-identical at any
/// thread count).
pub(crate) fn run_fleet(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
) -> LifetimeTally {
    run_fleet_range(code, env, config, 0..config.dimms)
}

/// Runs the DIMMs of `range` (global indices into the fleet) and merges
/// their tallies — the unit of work of one shard.
///
/// Epoch `e` of global DIMM `d` draws only from
/// `Rng::for_cell(seed, d, e)` no matter how the fleet is split, so the
/// sum of any partition's range tallies is bit-identical to the
/// unsharded [`run_fleet`] at any thread count.
pub(crate) fn run_fleet_range(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
    range: std::ops::Range<u64>,
) -> LifetimeTally {
    let plan = Plan::new(code, env, config);
    // Validate the starting erased set once, up front (fails fast instead
    // of panicking inside a worker).
    drop(DimmState::fresh(&FleetBackend::new(code), config));
    SimEngine::new(config.threads).run_with(
        config.seed,
        range.end - range.start,
        || FleetBackend::new(code),
        |local, _trial_rng, backend, tally: &mut LifetimeTally| {
            let dimm = range.start + local;
            let mut state = DimmState::fresh(backend, config);
            for epoch in 0..plan.epochs {
                // The determinism contract: epoch e of DIMM d draws only
                // from this stream, regardless of worker assignment.
                let mut rng = Rng::for_cell(config.seed, dimm, epoch);
                epoch_step(&plan, config, &mut rng, &mut state, backend, tally);
            }
        },
    )
}

/// One scrub interval of one DIMM. All sampling happens in a fixed order
/// off the epoch's private stream.
fn epoch_step(
    plan: &Plan,
    config: &FleetConfig,
    rng: &mut Rng,
    state: &mut DimmState,
    backend: &mut FleetBackend<'_>,
    tally: &mut LifetimeTally,
) {
    tally.epochs += 1;
    let degraded = !state.erased.is_empty();
    if degraded {
        tally.degraded_epochs += 1;
    }

    // 1. Arrival counts: one raw draw each, through the exact binomial CDF.
    let n_single = plan.cdf_single.sample(rng.next_u64());
    let n_multi = plan.cdf_multi.sample(rng.next_u64());
    let n_whole = plan.cdf_whole.sample(rng.next_u64());
    let n_trans = plan.cdf_trans.sample(rng.next_u64());

    // 2. Whole-device failures: device + undetected-exposure window.
    let mut pending: Vec<(u16, f64)> = Vec::new();
    for _ in 0..n_whole {
        let dev = plan.device_pick.sample(rng) as u16;
        if state.erased.contains(&dev) || pending.iter().any(|&(d, _)| d == dev) {
            continue;
        }
        let arrive = rng.f64();
        let demand = -(1.0 - rng.f64()).ln() * plan.demand_epochs;
        pending.push((dev, (1.0 - arrive).min(demand)));
    }

    let mut strikes: Vec<(u16, Strike)> = Vec::new();

    // 3. Row/column multi-bit faults: detected and mapped out at this
    //    scrub. On a healthy DIMM the row's words carry one in-model
    //    device error each — corrected by construction. Degraded, every
    //    word of the row goes through the erasure decoder.
    for _ in 0..n_multi {
        let dev = plan.device_pick.sample(rng) as u16;
        if state.erased.contains(&dev) || pending.iter().any(|&(d, _)| d == dev) {
            continue;
        }
        tally.rows_retired += 1;
        if !degraded {
            tally.corrected_words += plan.row_words as u64;
        } else {
            let width = backend.device_width(dev);
            for _ in 0..plan.row_words {
                strikes.clear();
                strikes.push((dev, Strike::Xor(rng.nonzero_below(1 << width) as u16)));
                tally.erasure_reads += 1;
                let out = backend.classify(&state.ctx, &strikes, rng);
                record(tally, out);
            }
        }
    }

    // 4. Stuck single bits: corrected on first read; the word keeps its
    //    latent fault and stays exposed to later transients.
    for _ in 0..n_single {
        let dev = plan.device_pick.sample(rng) as u16;
        if state.erased.contains(&dev) || pending.iter().any(|&(d, _)| d == dev) {
            continue;
        }
        if !degraded {
            tally.corrected_words += 1;
        } else {
            let width = backend.device_width(dev);
            strikes.clear();
            strikes.push((dev, Strike::Xor(1 << rng.below(width as u64))));
            tally.erasure_reads += 1;
            let out = backend.classify(&state.ctx, &strikes, rng);
            record(tally, out);
        }
        if state.stuck.len() < 4096 {
            state.stuck.push(dev);
        }
    }

    // 5. Transient upsets. Healthy single-word singles are corrected by
    //    the next scrub (tallied analytically); everything that can go
    //    wrong — degraded reads, overlaps with stuck words, dying chips,
    //    or a second transient in the same word — is classified.
    for i in 0..n_trans as u64 {
        let dev = plan.device_pick.sample(rng) as u16;
        let width = backend.device_width(dev);
        let bit = rng.below(width as u64) as u8;
        if state.erased.contains(&dev) {
            continue; // inside a dead chip: the erasure solve ignores it
        }
        let tstrike = if plan.asym {
            Strike::AsymBit(bit)
        } else {
            Strike::Xor(1 << bit)
        };
        strikes.clear();
        strikes.push((dev, tstrike));
        // Dying chips: garbage while the failure is undetected.
        for &(ddev, window) in &pending {
            if ddev != dev && rng.chance(window) {
                let garbage = rng.below(1 << backend.device_width(ddev)) as u16;
                if garbage != 0 {
                    strikes.push((ddev, Strike::Xor(garbage)));
                }
            }
        }
        // Landing in a word with a latent stuck bit.
        if !state.stuck.is_empty() && rng.chance(state.stuck.len() as f64 / plan.words) {
            let s = state.stuck[rng.below(state.stuck.len() as u64) as usize];
            if !state.erased.contains(&s) && !strikes.iter().any(|&(d, _)| d == s) {
                let w = backend.device_width(s);
                strikes.push((s, Strike::Xor(1 << rng.below(w as u64))));
            }
        }
        // Colliding with an earlier transient of this epoch.
        if i > 0 && rng.chance(i as f64 / plan.words) {
            let other = plan.device_pick.sample(rng) as u16;
            let ow = backend.device_width(other);
            let obit = rng.below(ow as u64) as u8;
            if !state.erased.contains(&other) && !strikes.iter().any(|&(d, _)| d == other) {
                strikes.push((
                    other,
                    if plan.asym {
                        Strike::AsymBit(obit)
                    } else {
                        Strike::Xor(1 << obit)
                    },
                ));
            }
        }
        strikes.truncate(16);
        if degraded {
            tally.erasure_reads += 1;
            let out = backend.classify(&state.ctx, &strikes, rng);
            record(tally, out);
        } else if strikes.len() == 1 {
            // A lone in-model transient: scrubbed away. Asymmetric cells
            // only flip when they store a 1 (uniform contents: p = 1/2).
            match tstrike {
                Strike::Xor(_) => tally.corrected_words += 1,
                Strike::AsymBit(_) => {
                    if rng.chance(0.5) {
                        tally.corrected_words += 1;
                    }
                }
            }
        } else {
            let out = backend.classify(&state.ctx, &strikes, rng);
            record(tally, out);
        }
    }

    // 6. Epoch boundary: act on the detected whole-device failures.
    for &(dev, _) in &pending {
        tally.devices_retired += 1;
        let mut candidate = state.erased.clone();
        candidate.push(dev);
        candidate.sort_unstable();
        if let Some(cctx) = backend.resolve(&candidate) {
            if state.spares_left > 0 {
                // Chip sparing: one rebuild pass reads every word through
                // the erasure decoder; words disturbed by a concurrent
                // transient are the ones that can fail.
                let n_rebuild = plan.cdf_trans.sample(rng.next_u64());
                for _ in 0..n_rebuild {
                    let tdev = plan.device_pick.sample(rng) as u16;
                    if candidate.contains(&tdev) {
                        continue;
                    }
                    let w = backend.device_width(tdev);
                    let bit = rng.below(w as u64) as u8;
                    strikes.clear();
                    strikes.push((
                        tdev,
                        if plan.asym {
                            Strike::AsymBit(bit)
                        } else {
                            Strike::Xor(1 << bit)
                        },
                    ));
                    tally.erasure_reads += 1;
                    let out = backend.classify(&cctx, &strikes, rng);
                    record(tally, out);
                }
                state.spares_left -= 1;
                tally.spare_rebuilds += 1;
                // The failed chip is now spared: the erased set is
                // unchanged going forward.
            } else {
                // No spares: degraded operation from the next epoch on.
                state.erased = candidate;
                state.ctx = cctx;
            }
        } else {
            // Beyond the code's erasure capacity (or an unrecoverable
            // device combination): data loss; the DIMM is replaced.
            tally.data_loss_events += 1;
            tally.dimm_replacements += 1;
            *state = DimmState::fresh(backend, config);
            break;
        }
    }
}
