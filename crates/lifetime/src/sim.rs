//! The discrete-event fleet engine: per-DIMM epoch walks on counter-based
//! `(DIMM, epoch)` RNG streams, batched over [`SimEngine`] workers.
//!
//! # Event model (one epoch = one scrub interval)
//!
//! 1. **Arrivals.** Permanent faults arrive per device as Poisson processes
//!    (sampled as per-epoch binomial counts over the device population —
//!    at most one arrival per device per epoch, an error `< p²`):
//!    stuck single bits, row/column multi-bit faults, and whole-device
//!    (ChipKill) failures, at [`FailureMode`] FIT rates scaled by the
//!    [`Environment`](crate::Environment). Transient single-bit upsets
//!    arrive the same way at the environment's transient rate.
//! 2. **Exposure.** A whole-device failure is *undetected* from its arrival
//!    until the earlier of the next scrub and a demand read
//!    (exponentially distributed latency). Words read in that window carry
//!    the dead chip's garbage as an extra, unknown device error.
//! 3. **Classification.** Only reads that can produce a non-trivial
//!    outcome are classified (everything else is tallied analytically):
//!    transient-hit words on a degraded DIMM, multi-fault overlaps
//!    (transient × transient, transient × stuck word, transient × dying
//!    chip), and the scrub reads of freshly detected permanent faults.
//!    Classification runs through the unified syndrome-domain backend
//!    ([`FleetBackend`], a [`muse_core::Classifier`]) — never
//!    materializing a word. Degraded reads use **combined**
//!    error-and-erasure decoding: Forney-style `2e + ν ≤ 2t` for RS, the
//!    erasure-solve-plus-ELC-correction analogue for MUSE.
//! 4. **Repair.** At the epoch boundary each detected whole-device failure
//!    either consumes a spare (one full-fleet rebuild pass through the
//!    erasure decoder, then the chip is replaced), or — with no spares
//!    left — transitions the DIMM into *degraded operation*: the device
//!    joins the erased set and every later read decodes around it. A
//!    failure that exceeds the code's erasure capacity (or lands on an
//!    unrecoverable device combination) is a data-loss event: the DIMM is
//!    replaced and restarts fresh.
//!
//! # Determinism
//!
//! Epoch `e` of DIMM `d` draws exclusively from
//! [`Rng::for_cell`]`(seed, d, e)`; per-DIMM tallies merge in DIMM order.
//! Results are bit-identical at any thread count
//! (`tests/determinism.rs`).
//!
//! # Importance sampling
//!
//! Under [`Estimator::Importance`] the walk layers a biased measure on
//! top of the nominal draws (see [`crate::estimator`] for the scheme):
//! extra permanent-fault arrivals come off the domain-separated
//! [`Rng::for_bias`]`(seed, d, e)` stream, rare collision draws are
//! boosted in place on the main stream, and every biased decision
//! multiplies an exact likelihood ratio into the trajectory weight.
//! DUE/SDC events accumulate the weight at event time; per-DIMM totals
//! are quantized into the fixed-point [`LifetimeTally`] weighted sums,
//! so weighted results keep the same any-thread-count bit-identity as
//! the raw counts. At a bias factor of exactly 1.0 no bias-stream draw
//! is consumed, every likelihood ratio is exactly 1.0, and the main
//! stream sees the identical draw sequence as a naive run.

use muse_core::{Classifier, Strike, WordRead};
use muse_faultsim::{Bounded32, CountCdf, FailureMode, Rng, SimEngine};

use crate::classify::{FleetBackend, FleetContext};
use crate::estimator::{boosted_chance, BiasedCount, Estimator};
use crate::{Environment, FleetCode, FleetConfig, LifetimeTally};

/// Hours per (Julian) year, the FIT-rate convention.
pub(crate) const HOURS_PER_YEAR: f64 = 8766.0;

/// Precomputed per-run sampling constants.
pub(crate) struct Plan {
    epochs: u64,
    cdf_single: CountCdf,
    cdf_multi: CountCdf,
    cdf_whole: CountCdf,
    cdf_trans: CountCdf,
    device_pick: Bounded32,
    words: f64,
    row_words: u32,
    /// Mean demand-read detection latency, in epoch units.
    demand_epochs: f64,
    asym: bool,
    /// Importance-sampling plan; `None` under the naive estimator.
    bias: Option<BiasPlan>,
}

/// Precomputed biased-arrival samplers and the collision boost factor.
///
/// Only the *permanent* fault modes are biased: their per-epoch arrival
/// probabilities are the rare ingredients of multi-fault SDC paths,
/// while the transient rate is large enough that inflating it would
/// explode the weight variance instead of reducing it.
struct BiasPlan {
    factor: f64,
    single: BiasedCount,
    multi: BiasedCount,
    whole: BiasedCount,
}

impl Plan {
    pub fn new(code: &FleetCode, env: &Environment, config: &FleetConfig) -> Self {
        let devices = code.devices() as u32;
        let hours = config.scrub_interval_hours;
        let p_mode =
            |mode: FailureMode, scale: f64| (mode.fit_per_device() * scale * hours / 1e9).min(1.0);
        let [s_single, s_multi, s_whole] = env.permanent_scale;
        let p_single = p_mode(FailureMode::SingleBit, s_single);
        let p_multi = p_mode(FailureMode::SingleDeviceMultiBit, s_multi);
        let p_whole = p_mode(FailureMode::WholeDevice, s_whole);
        Self {
            epochs: config.epochs(),
            cdf_single: CountCdf::binomial(devices, p_single),
            cdf_multi: CountCdf::binomial(devices, p_multi),
            cdf_whole: CountCdf::binomial(devices, p_whole),
            cdf_trans: CountCdf::binomial(
                devices,
                (env.transient_fit_per_device * hours / 1e9).min(1.0),
            ),
            device_pick: Bounded32::new(devices),
            words: config.words_per_dimm as f64,
            row_words: config.row_words,
            demand_epochs: config.demand_read_hours / hours,
            asym: env.asymmetric_transients,
            bias: match config.estimator {
                Estimator::Naive => None,
                Estimator::Importance { bias } => Some(BiasPlan {
                    factor: bias,
                    single: BiasedCount::new(devices, p_single, bias),
                    multi: BiasedCount::new(devices, p_multi, bias),
                    whole: BiasedCount::new(devices, p_whole, bias),
                }),
            },
        }
    }
}

/// Per-epoch permanent-fault arrival probabilities per device, by biased
/// channel name — the inputs of the supervisor's weight-cap saturation
/// diagnostic (`(bias − 1) · p > EXTRA_P_CAP` means the channel's
/// effective inflation is clipped).
pub(crate) fn arrival_probabilities(
    env: &Environment,
    config: &FleetConfig,
) -> [(&'static str, f64); 3] {
    let hours = config.scrub_interval_hours;
    let p_mode =
        |mode: FailureMode, scale: f64| (mode.fit_per_device() * scale * hours / 1e9).min(1.0);
    let [s_single, s_multi, s_whole] = env.permanent_scale;
    [
        ("single", p_mode(FailureMode::SingleBit, s_single)),
        ("multi", p_mode(FailureMode::SingleDeviceMultiBit, s_multi)),
        ("whole", p_mode(FailureMode::WholeDevice, s_whole)),
    ]
}

/// Per-DIMM mutable state.
struct DimmState {
    /// Retired (known-failed) devices, sorted — the erased set.
    erased: Vec<u16>,
    /// The decode context resolved for `erased`.
    ctx: FleetContext,
    /// Device of each word carrying a stuck permanent bit.
    stuck: Vec<u16>,
    spares_left: u32,
}

impl DimmState {
    fn fresh(backend: &FleetBackend<'_>, config: &FleetConfig) -> Self {
        let erased: Vec<u16> = (0..config.initial_failed_devices as u16).collect();
        let ctx = backend
            .resolve(&erased)
            .expect("initial_failed_devices exceeds the code's erasure capacity");
        Self {
            erased,
            ctx,
            stuck: Vec::new(),
            spares_left: config.spares_per_dimm,
        }
    }
}

/// One DIMM trajectory's running likelihood ratio and weighted event
/// totals. `f64` arithmetic stays inside the DIMM's sequential walk;
/// cross-DIMM aggregation happens in fixed point (see
/// [`crate::estimator::WeightedCount`]).
struct Weights {
    /// Running likelihood ratio (nominal density over biased density of
    /// every biased decision so far). Exactly 1.0 under the naive
    /// estimator or a bias factor of 1.0.
    w: f64,
    /// Sum over DUE / data-loss events of the weight at event time.
    due: f64,
    /// Sum over SDC events of the weight at event time.
    sdc: f64,
}

impl Weights {
    fn fresh() -> Self {
        Self {
            w: 1.0,
            due: 0.0,
            sdc: 0.0,
        }
    }
}

fn record(tally: &mut LifetimeTally, ws: &mut Weights, out: WordRead) {
    match out {
        WordRead::Correct => tally.corrected_words += 1,
        WordRead::Due => {
            tally.due_words += 1;
            ws.due += ws.w;
        }
        WordRead::Sdc => {
            tally.sdc_words += 1;
            ws.sdc += ws.w;
        }
    }
}

/// Runs the whole fleet and merges the tallies (bit-identical at any
/// thread count).
pub(crate) fn run_fleet(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
) -> LifetimeTally {
    run_fleet_range(code, env, config, 0..config.dimms)
}

/// Runs the DIMMs of `range` (global indices into the fleet) and merges
/// their tallies — the unit of work of one shard.
///
/// Epoch `e` of global DIMM `d` draws only from
/// `Rng::for_cell(seed, d, e)` no matter how the fleet is split, so the
/// sum of any partition's range tallies is bit-identical to the
/// unsharded [`run_fleet`] at any thread count.
pub(crate) fn run_fleet_range(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
    range: std::ops::Range<u64>,
) -> LifetimeTally {
    let plan = Plan::new(code, env, config);
    // Validate the starting erased set once, up front (fails fast instead
    // of panicking inside a worker).
    drop(DimmState::fresh(&FleetBackend::new(code), config));
    SimEngine::new(config.threads).run_with(
        config.seed,
        range.end - range.start,
        || FleetBackend::new(code),
        |local, _trial_rng, backend, tally: &mut LifetimeTally| {
            let dimm = range.start + local;
            let mut state = DimmState::fresh(backend, config);
            let mut ws = Weights::fresh();
            let biased = plan.bias.is_some();
            for epoch in 0..plan.epochs {
                // The determinism contract: epoch e of DIMM d draws only
                // from this stream (plus its domain-separated bias
                // companion), regardless of worker assignment.
                let mut rng = Rng::for_cell(config.seed, dimm, epoch);
                let mut bias_rng = if biased {
                    Some(Rng::for_bias(config.seed, dimm, epoch))
                } else {
                    None
                };
                epoch_step(
                    &plan,
                    config,
                    &mut rng,
                    bias_rng.as_mut(),
                    &mut ws,
                    &mut state,
                    backend,
                    tally,
                );
            }
            if biased {
                // Quantize the per-DIMM f64 totals once, in DIMM order:
                // fixed-point addition is associative, so the merged
                // fleet sums are partition-invariant.
                tally.due_weighted.push(ws.due);
                tally.sdc_weighted.push(ws.sdc);
                tally.weight_sum.push(ws.w);
            }
        },
    )
}

/// Draws one collision decision: the plain `chance(p)` under the naive
/// estimator, the boosted draw (with its likelihood ratio folded into
/// the trajectory weight) under importance sampling. Either way exactly
/// one main-stream draw is consumed, and at a bias factor of 1.0 the
/// boosted probability collapses back to `p`.
fn collision(rng: &mut Rng, p: f64, boost: Option<f64>, ws: &mut Weights) -> bool {
    match boost {
        None => rng.chance(p),
        Some(factor) => {
            let (hit, lr) = boosted_chance(rng, p, factor);
            ws.w *= lr;
            hit
        }
    }
}

/// One scrub interval of one DIMM. All sampling happens in a fixed order
/// off the epoch's private stream; biased extras come off `bias_rng`.
#[allow(clippy::too_many_arguments)]
fn epoch_step(
    plan: &Plan,
    config: &FleetConfig,
    rng: &mut Rng,
    bias_rng: Option<&mut Rng>,
    ws: &mut Weights,
    state: &mut DimmState,
    backend: &mut FleetBackend<'_>,
    tally: &mut LifetimeTally,
) {
    tally.epochs += 1;
    let degraded = !state.erased.is_empty();
    if degraded {
        tally.degraded_epochs += 1;
    }
    let boost = plan.bias.as_ref().map(|b| b.factor);

    // 1. Arrival counts: one raw draw each, through the exact binomial
    //    CDF. Under importance sampling each permanent-fault count is
    //    topped up with an independent extra-arrival draw off the bias
    //    stream, and the exact likelihood ratio of the combined count
    //    multiplies the trajectory weight (transients stay unbiased —
    //    see [`BiasPlan`]).
    let mut n_single = plan.cdf_single.sample(rng.next_u64());
    let mut n_multi = plan.cdf_multi.sample(rng.next_u64());
    let mut n_whole = plan.cdf_whole.sample(rng.next_u64());
    let n_trans = plan.cdf_trans.sample(rng.next_u64());
    if let (Some(bp), Some(brng)) = (&plan.bias, bias_rng) {
        n_single += bp.single.sample_extra(brng);
        n_multi += bp.multi.sample_extra(brng);
        n_whole += bp.whole.sample_extra(brng);
        ws.w *= bp.single.likelihood(n_single)
            * bp.multi.likelihood(n_multi)
            * bp.whole.likelihood(n_whole);
    }

    // 2. Whole-device failures: device + undetected-exposure window.
    let mut pending: Vec<(u16, f64)> = Vec::new();
    for _ in 0..n_whole {
        let dev = plan.device_pick.sample(rng) as u16;
        if state.erased.contains(&dev) || pending.iter().any(|&(d, _)| d == dev) {
            continue;
        }
        let arrive = rng.f64();
        let demand = -(1.0 - rng.f64()).ln() * plan.demand_epochs;
        pending.push((dev, (1.0 - arrive).min(demand)));
    }

    let mut strikes: Vec<(u16, Strike)> = Vec::new();

    // 3. Row/column multi-bit faults: detected and mapped out at this
    //    scrub. On a healthy DIMM the row's words carry one in-model
    //    device error each — corrected by construction. Degraded, every
    //    word of the row goes through the erasure decoder.
    for _ in 0..n_multi {
        let dev = plan.device_pick.sample(rng) as u16;
        if state.erased.contains(&dev) || pending.iter().any(|&(d, _)| d == dev) {
            continue;
        }
        tally.rows_retired += 1;
        if !degraded {
            tally.corrected_words += plan.row_words as u64;
        } else {
            let width = backend.device_width(dev);
            for _ in 0..plan.row_words {
                strikes.clear();
                strikes.push((dev, Strike::Xor(rng.nonzero_below(1 << width) as u16)));
                tally.erasure_reads += 1;
                let out = backend.classify(&state.ctx, &strikes, rng);
                record(tally, ws, out);
            }
        }
    }

    // 4. Stuck single bits: corrected on first read; the word keeps its
    //    latent fault and stays exposed to later transients.
    for _ in 0..n_single {
        let dev = plan.device_pick.sample(rng) as u16;
        if state.erased.contains(&dev) || pending.iter().any(|&(d, _)| d == dev) {
            continue;
        }
        if !degraded {
            tally.corrected_words += 1;
        } else {
            let width = backend.device_width(dev);
            strikes.clear();
            strikes.push((dev, Strike::Xor(1 << rng.below(width as u64))));
            tally.erasure_reads += 1;
            let out = backend.classify(&state.ctx, &strikes, rng);
            record(tally, ws, out);
        }
        if state.stuck.len() < 4096 {
            state.stuck.push(dev);
        }
    }

    // 5. Transient upsets. Healthy single-word singles are corrected by
    //    the next scrub (tallied analytically); everything that can go
    //    wrong — degraded reads, overlaps with stuck words, dying chips,
    //    or a second transient in the same word — is classified.
    for i in 0..n_trans as u64 {
        let dev = plan.device_pick.sample(rng) as u16;
        let width = backend.device_width(dev);
        let bit = rng.below(width as u64) as u8;
        if state.erased.contains(&dev) {
            continue; // inside a dead chip: the erasure solve ignores it
        }
        let tstrike = if plan.asym {
            Strike::AsymBit(bit)
        } else {
            Strike::Xor(1 << bit)
        };
        strikes.clear();
        strikes.push((dev, tstrike));
        // Dying chips: garbage while the failure is undetected.
        for &(ddev, window) in &pending {
            if ddev != dev && collision(rng, window, boost, ws) {
                let garbage = rng.below(1 << backend.device_width(ddev)) as u16;
                if garbage != 0 {
                    strikes.push((ddev, Strike::Xor(garbage)));
                }
            }
        }
        // Landing in a word with a latent stuck bit.
        if !state.stuck.is_empty()
            && collision(rng, state.stuck.len() as f64 / plan.words, boost, ws)
        {
            let s = state.stuck[rng.below(state.stuck.len() as u64) as usize];
            if !state.erased.contains(&s) && !strikes.iter().any(|&(d, _)| d == s) {
                let w = backend.device_width(s);
                strikes.push((s, Strike::Xor(1 << rng.below(w as u64))));
            }
        }
        // Colliding with an earlier transient of this epoch.
        if i > 0 && collision(rng, i as f64 / plan.words, boost, ws) {
            let other = plan.device_pick.sample(rng) as u16;
            let ow = backend.device_width(other);
            let obit = rng.below(ow as u64) as u8;
            if !state.erased.contains(&other) && !strikes.iter().any(|&(d, _)| d == other) {
                strikes.push((
                    other,
                    if plan.asym {
                        Strike::AsymBit(obit)
                    } else {
                        Strike::Xor(1 << obit)
                    },
                ));
            }
        }
        strikes.truncate(16);
        if degraded {
            tally.erasure_reads += 1;
            let out = backend.classify(&state.ctx, &strikes, rng);
            record(tally, ws, out);
        } else if strikes.len() == 1 {
            // A lone in-model transient: scrubbed away. Asymmetric cells
            // only flip when they store a 1 (uniform contents: p = 1/2).
            match tstrike {
                Strike::Xor(_) => tally.corrected_words += 1,
                Strike::AsymBit(_) => {
                    if rng.chance(0.5) {
                        tally.corrected_words += 1;
                    }
                }
            }
        } else {
            let out = backend.classify(&state.ctx, &strikes, rng);
            record(tally, ws, out);
        }
    }

    // 6. Epoch boundary: act on the detected whole-device failures.
    for &(dev, _) in &pending {
        tally.devices_retired += 1;
        let mut candidate = state.erased.clone();
        candidate.push(dev);
        candidate.sort_unstable();
        if let Some(cctx) = backend.resolve(&candidate) {
            if state.spares_left > 0 {
                // Chip sparing: one rebuild pass reads every word through
                // the erasure decoder; words disturbed by a concurrent
                // transient are the ones that can fail.
                let n_rebuild = plan.cdf_trans.sample(rng.next_u64());
                for _ in 0..n_rebuild {
                    let tdev = plan.device_pick.sample(rng) as u16;
                    if candidate.contains(&tdev) {
                        continue;
                    }
                    let w = backend.device_width(tdev);
                    let bit = rng.below(w as u64) as u8;
                    strikes.clear();
                    strikes.push((
                        tdev,
                        if plan.asym {
                            Strike::AsymBit(bit)
                        } else {
                            Strike::Xor(1 << bit)
                        },
                    ));
                    tally.erasure_reads += 1;
                    let out = backend.classify(&cctx, &strikes, rng);
                    record(tally, ws, out);
                }
                state.spares_left -= 1;
                tally.spare_rebuilds += 1;
                // The failed chip is now spared: the erased set is
                // unchanged going forward.
            } else {
                // No spares: degraded operation from the next epoch on.
                state.erased = candidate;
                state.ctx = cctx;
            }
        } else {
            // Beyond the code's erasure capacity (or an unrecoverable
            // device combination): data loss; the DIMM is replaced. The
            // trajectory weight carries across the replacement — the
            // biased measure runs over the whole DIMM slot's lifetime.
            tally.data_loss_events += 1;
            ws.due += ws.w;
            tally.dimm_replacements += 1;
            *state = DimmState::fresh(backend, config);
            break;
        }
    }
}
