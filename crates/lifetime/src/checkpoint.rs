//! Durable, crash-safe fleet checkpoints: the `lifetime-ckpt/v2` format
//! (reading `v1` payloads transparently).
//!
//! A checkpoint captures everything the sharded runner
//! ([`run_sharded`](crate::run_sharded)) needs to continue an interrupted
//! fleet run bit-identically: the shard completion map with each completed
//! shard's [`LifetimeTally`] partial, the shard-plan geometry, and a
//! [`config_hash`] fingerprint of the full `(FleetCode, Environment,
//! FleetConfig)` triple so a checkpoint can never silently resume under
//! different parameters.
//!
//! # On-disk layout (`lifetime-ckpt/v2`, with v1 read-compat)
//!
//! One checkpoint file is a fixed header followed by one record per
//! completed shard, every piece independently CRC-32 checksummed:
//!
//! ```text
//! header (56 bytes):
//!   0   8  magic  b"MLCKPT1\n"
//!   8   4  format version (u32 LE) = 2 (1 accepted on read)
//!   12  4  shard count of the run's shard plan (u32 LE)
//!   16  8  config_hash (u64 LE)
//!   24  8  generation (u64 LE, monotonically increasing per save)
//!   32  8  fleet dimms (u64 LE)
//!   40  8  epoch cursor: DIMM-epochs covered by the records (u64 LE)
//!   48  4  record count (u32 LE)
//!   52  4  CRC-32 of bytes 0..52
//! record (192 bytes, repeated `record count` times, ascending shard index):
//!   0    4  shard index (u32 LE)
//!   4   88  the 11 raw LifetimeTally counters (u64 LE, declaration order)
//!   92  96  the 3 WeightedCount accumulators — due_weighted,
//!           sdc_weighted, weight_sum — each as sum_q64 then sumsq_q32
//!           (u128 LE); all zero under the naive estimator
//!   188  4  CRC-32 of bytes 0..188
//! ```
//!
//! A **version-1** record is 96 bytes — the same first 92 bytes followed
//! directly by its CRC, with no weighted accumulators. [`Checkpoint::decode`]
//! still accepts such payloads (the weighted sums load as zero, which is
//! exactly what the naive estimator that wrote them would have recorded),
//! so pre-v2 checkpoints resume unchanged. The config-hash domain string
//! stays `"lifetime-ckpt/v1"` for the same reason: the hash fingerprints
//! the *run configuration*, not the container format, and changing it
//! would orphan every existing naive checkpoint. Importance-sampling runs
//! can never adopt an old checkpoint anyway — their estimator feeds extra
//! bytes into [`FleetConfig::canonical_bytes`], giving a different hash.
//!
//! # Generation policy and corruption fallback
//!
//! A [`CheckpointStore`] keeps **two generations** in alternating slot
//! files (`<prefix>.g0` / `<prefix>.g1`, slot = generation mod 2). Every
//! save is atomic — write to `<prefix>.tmp`, `fsync`, rename over the
//! slot — so a crash mid-write can at worst corrupt the *newest*
//! generation, never the previous one. [`CheckpointStore::load`] decodes
//! both slots and returns the valid checkpoint with the highest
//! generation; if the newest slot is truncated or bit-flipped (any CRC,
//! magic, or length check fails) it **falls back to the previous
//! generation** and reports the fallback, and the resumed run simply
//! recomputes the shards that generation had not yet recorded. Only when
//! both slots are unreadable does a resume start from scratch.

use std::io::Write;
use std::path::{Path, PathBuf};

use crate::estimator::WeightedCount;
use crate::iofault::{injected_io_error, IoFaultPlan};
use crate::{Environment, FleetCode, FleetConfig, LifetimeTally};

/// Magic bytes opening every checkpoint file (shared by v1 and v2).
pub const MAGIC: [u8; 8] = *b"MLCKPT1\n";
/// Checkpoint format version written by this build. Version 1 payloads
/// are still accepted on read (their weighted sums load as zero).
pub const FORMAT_VERSION: u32 = 2;
const HEADER_LEN: usize = 56;
const RECORD_LEN_V1: usize = 96;
const RECORD_LEN_V2: usize = 192;
const TALLY_FIELDS: usize = 11;

/// Why a checkpoint payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The payload is shorter than its header and records claim.
    Truncated,
    /// The magic bytes or format version do not match `lifetime-ckpt/v1`.
    BadFormat,
    /// A CRC-32 check failed (bit rot or a torn write).
    BadChecksum,
    /// Structurally invalid contents (shard indexes out of range or not
    /// strictly ascending).
    BadStructure,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "checkpoint truncated"),
            Self::BadFormat => write!(f, "not a lifetime-ckpt/v1 payload"),
            Self::BadChecksum => write!(f, "checkpoint CRC mismatch"),
            Self::BadStructure => write!(f, "checkpoint structurally invalid"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over `bytes` — the per-record
/// integrity check of the checkpoint format.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = (crc >> 1) ^ (0xEDB8_8320 & (0u32.wrapping_sub(crc & 1)));
        }
    }
    !crc
}

fn tally_fields(t: &LifetimeTally) -> [u64; TALLY_FIELDS] {
    [
        t.epochs,
        t.degraded_epochs,
        t.corrected_words,
        t.due_words,
        t.sdc_words,
        t.erasure_reads,
        t.devices_retired,
        t.rows_retired,
        t.spare_rebuilds,
        t.data_loss_events,
        t.dimm_replacements,
    ]
}

fn tally_from_fields(f: [u64; TALLY_FIELDS]) -> LifetimeTally {
    LifetimeTally {
        epochs: f[0],
        degraded_epochs: f[1],
        corrected_words: f[2],
        due_words: f[3],
        sdc_words: f[4],
        erasure_reads: f[5],
        devices_retired: f[6],
        rows_retired: f[7],
        spare_rebuilds: f[8],
        data_loss_events: f[9],
        dimm_replacements: f[10],
        ..LifetimeTally::default()
    }
}

/// The three weighted accumulators in their on-disk order.
fn weighted_fields(t: &LifetimeTally) -> [WeightedCount; 3] {
    [t.due_weighted, t.sdc_weighted, t.weight_sum]
}

/// An in-memory checkpoint: the durable state of one sharded fleet run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// [`config_hash`] of the `(code, environment, config)` under
    /// simulation. Resume refuses a checkpoint whose hash differs.
    pub config_hash: u64,
    /// Monotonically increasing save counter (starts at 1).
    pub generation: u64,
    /// Shard count of the run's [`ShardPlan`](crate::ShardPlan); resume
    /// adopts this plan so a different `--shards` value cannot misalign
    /// the recorded ranges.
    pub shard_count: u32,
    /// Fleet size the plan splits (consistency check against the config).
    pub dimms: u64,
    /// Fleet epoch cursor: DIMM-epochs covered by `done` (drives the
    /// resume banner's machine-years figure).
    pub epoch_cursor: u64,
    /// Completed shards, ascending by shard index, with their tally
    /// partials.
    pub done: Vec<(u32, LifetimeTally)>,
}

impl Checkpoint {
    fn encode_header(&self, version: u32, record_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + record_len * self.done.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&self.shard_count.to_le_bytes());
        out.extend_from_slice(&self.config_hash.to_le_bytes());
        out.extend_from_slice(&self.generation.to_le_bytes());
        out.extend_from_slice(&self.dimms.to_le_bytes());
        out.extend_from_slice(&self.epoch_cursor.to_le_bytes());
        out.extend_from_slice(&(self.done.len() as u32).to_le_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len(), HEADER_LEN);
        out
    }

    /// Serializes to the `lifetime-ckpt/v2` byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = self.encode_header(FORMAT_VERSION, RECORD_LEN_V2);
        for &(shard, ref tally) in &self.done {
            let start = out.len();
            out.extend_from_slice(&shard.to_le_bytes());
            for field in tally_fields(tally) {
                out.extend_from_slice(&field.to_le_bytes());
            }
            for wc in weighted_fields(tally) {
                out.extend_from_slice(&wc.sum_q64.to_le_bytes());
                out.extend_from_slice(&wc.sumsq_q32.to_le_bytes());
            }
            let crc = crc32(&out[start..]);
            out.extend_from_slice(&crc.to_le_bytes());
        }
        out
    }

    /// Serializes to the legacy `lifetime-ckpt/v1` byte layout (96-byte
    /// records, no weighted accumulators — they are simply dropped).
    /// Kept so the v1 read-compat path stays testable against bytes a
    /// pre-v2 build would actually have written.
    pub fn encode_v1(&self) -> Vec<u8> {
        let mut out = self.encode_header(1, RECORD_LEN_V1);
        for &(shard, ref tally) in &self.done {
            let start = out.len();
            out.extend_from_slice(&shard.to_le_bytes());
            for field in tally_fields(tally) {
                out.extend_from_slice(&field.to_le_bytes());
            }
            let crc = crc32(&out[start..]);
            out.extend_from_slice(&crc.to_le_bytes());
        }
        out
    }

    /// Decodes and fully validates a `lifetime-ckpt/v1` or `/v2` payload:
    /// magic, version, exact length, header and per-record CRCs, and
    /// shard-index structure. Any corruption — truncation anywhere, any
    /// flipped bit — yields an error rather than a partial checkpoint.
    /// Version-1 records carry no weighted accumulators; those load as
    /// zero (what the naive estimator that wrote them recorded).
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < HEADER_LEN {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..8] != MAGIC {
            return Err(CheckpointError::BadFormat);
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let u128_at = |off: usize| u128::from_le_bytes(bytes[off..off + 16].try_into().unwrap());
        let record_len = match u32_at(8) {
            1 => RECORD_LEN_V1,
            2 => RECORD_LEN_V2,
            _ => return Err(CheckpointError::BadFormat),
        };
        if crc32(&bytes[..52]) != u32_at(52) {
            return Err(CheckpointError::BadChecksum);
        }
        let shard_count = u32_at(12);
        let records = u32_at(48) as usize;
        if bytes.len() != HEADER_LEN + record_len * records {
            return Err(CheckpointError::Truncated);
        }
        let mut done = Vec::with_capacity(records);
        let mut prev: Option<u32> = None;
        for r in 0..records {
            let base = HEADER_LEN + record_len * r;
            let crc_off = base + record_len - 4;
            if crc32(&bytes[base..crc_off]) != u32_at(crc_off) {
                return Err(CheckpointError::BadChecksum);
            }
            let shard = u32_at(base);
            if shard >= shard_count || prev.is_some_and(|p| shard <= p) {
                return Err(CheckpointError::BadStructure);
            }
            prev = Some(shard);
            let mut fields = [0u64; TALLY_FIELDS];
            for (i, field) in fields.iter_mut().enumerate() {
                *field = u64_at(base + 4 + 8 * i);
            }
            let mut tally = tally_from_fields(fields);
            if record_len == RECORD_LEN_V2 {
                let wbase = base + 4 + 8 * TALLY_FIELDS;
                let wc = |i: usize| WeightedCount {
                    sum_q64: u128_at(wbase + 32 * i),
                    sumsq_q32: u128_at(wbase + 32 * i + 16),
                };
                tally.due_weighted = wc(0);
                tally.sdc_weighted = wc(1);
                tally.weight_sum = wc(2);
            }
            done.push((shard, tally));
        }
        Ok(Self {
            config_hash: u64_at(16),
            generation: u64_at(24),
            shard_count,
            dimms: u64_at(32),
            epoch_cursor: u64_at(40),
            done,
        })
    }
}

/// How an injected fault mangles a checkpoint file (see
/// [`FaultPlan`](crate::FaultPlan)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Cut the file to half its length (a torn write / full disk).
    Truncate,
    /// Flip one bit in the middle of the payload (bit rot).
    BitFlip,
}

/// A checkpoint read back from disk.
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The newest valid checkpoint.
    pub checkpoint: Checkpoint,
    /// True when a *newer* slot existed but was corrupt, so this is the
    /// previous-generation fallback.
    pub fell_back: bool,
}

/// The two-generation on-disk store of one sharded run's checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    slots: [PathBuf; 2],
    tmp: PathBuf,
    faults: Option<IoFaultPlan>,
}

impl CheckpointStore {
    /// Opens (creating the directory if needed) the store for `prefix`
    /// under `dir`. Distinct runs sharing a directory must use distinct
    /// prefixes.
    pub fn open(dir: &Path, prefix: &str) -> std::io::Result<Self> {
        Self::open_with_faults(dir, prefix, None)
    }

    /// [`Self::open`] with an [`IoFaultPlan`] seam: every [`Self::save`]
    /// consults the plan, keyed by the checkpoint's **generation** (a
    /// natural, deterministic op index), so chaos tests can inject
    /// ENOSPC / torn writes / fsync / rename failures at exact,
    /// reproducible points in a run.
    pub fn open_with_faults(
        dir: &Path,
        prefix: &str,
        faults: Option<IoFaultPlan>,
    ) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            slots: [
                dir.join(format!("{prefix}.g0")),
                dir.join(format!("{prefix}.g1")),
            ],
            tmp: dir.join(format!("{prefix}.tmp")),
            faults: faults.filter(IoFaultPlan::any_storage_faults),
        })
    }

    /// The slot file a given generation lands in.
    pub fn slot_path(&self, generation: u64) -> &Path {
        &self.slots[(generation % 2) as usize]
    }

    /// Atomically persists `checkpoint` into its generation's slot:
    /// write-to-temp, `fsync`, rename. The previous generation's slot is
    /// untouched, so a crash at any instant leaves at least one valid
    /// checkpoint behind.
    ///
    /// With an [`IoFaultPlan`] attached ([`Self::open_with_faults`]),
    /// injected ENOSPC / fsync / rename faults surface here as `Err` —
    /// the previous generation stays intact and resumable — while an
    /// injected short write commits a torn payload that [`Self::load`]'s
    /// CRC validation rejects (fallback generation loads instead). A
    /// post-commit `corrupt_record` fault flips one bit in the slot
    /// (bit rot), exercising the same fallback.
    pub fn save(&self, checkpoint: &Checkpoint) -> std::io::Result<()> {
        let generation = checkpoint.generation;
        if let Some(f) = &self.faults {
            if f.enospc(generation) {
                return Err(injected_io_error("ENOSPC", generation));
            }
        }
        let bytes = checkpoint.encode();
        let write_len = match &self.faults {
            Some(f) if f.short_write(generation) => bytes.len() / 2,
            _ => bytes.len(),
        };
        let mut file = std::fs::File::create(&self.tmp)?;
        file.write_all(&bytes[..write_len])?;
        if let Some(f) = &self.faults {
            if f.fsync_fails(generation) {
                return Err(injected_io_error("fsync failure", generation));
            }
        }
        file.sync_all()?;
        drop(file);
        if let Some(f) = &self.faults {
            if f.rename_fails(generation) {
                return Err(injected_io_error("rename failure", generation));
            }
        }
        std::fs::rename(&self.tmp, self.slot_path(generation))?;
        if let Some(f) = &self.faults {
            if f.corrupts_record(generation) {
                self.corrupt(generation, Corruption::BitFlip)?;
            }
        }
        Ok(())
    }

    /// Loads the newest valid checkpoint, falling back to the previous
    /// generation when the newest slot is corrupt. `None` when neither
    /// slot holds a valid checkpoint.
    pub fn load(&self) -> Option<Loaded> {
        let mut valid: Vec<Checkpoint> = Vec::new();
        let mut corrupt = 0u32;
        for slot in &self.slots {
            // An unreadable slot is "not yet written"; only a slot that
            // exists but fails validation counts as corruption.
            if let Ok(bytes) = std::fs::read(slot) {
                match Checkpoint::decode(&bytes) {
                    Ok(c) => valid.push(c),
                    Err(_) => corrupt += 1,
                }
            }
        }
        valid.sort_by_key(|c| c.generation);
        let checkpoint = valid.pop()?;
        Some(Loaded {
            checkpoint,
            fell_back: corrupt > 0,
        })
    }

    /// Deletes both generations (a non-resuming run starts clean).
    pub fn clear(&self) -> std::io::Result<()> {
        for path in self.slots.iter().chain([&self.tmp]) {
            match std::fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Applies an injected [`Corruption`] to `generation`'s slot file.
    /// Returns `false` when the slot does not exist. Used by the fault
    /// plan (and tests) to prove the fallback path works.
    pub fn corrupt(&self, generation: u64, kind: Corruption) -> std::io::Result<bool> {
        let path = self.slot_path(generation);
        let Ok(mut bytes) = std::fs::read(path) else {
            return Ok(false);
        };
        match kind {
            Corruption::Truncate => bytes.truncate(bytes.len() / 2),
            Corruption::BitFlip => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x10;
            }
        }
        std::fs::write(path, &bytes)?;
        Ok(true)
    }
}

/// FNV-1a 64-bit over the canonical encodings of the full run
/// configuration — the stable fingerprint stored in every checkpoint (and
/// the future result-cache key): a checkpoint resumes only under the
/// exact `(code, environment, config)` that produced it.
///
/// [`FleetConfig::threads`] is deliberately **excluded** (via
/// [`FleetConfig::canonical_bytes`]): tallies are bit-identical at any
/// thread count, so moving a checkpoint to a machine with different
/// parallelism must not invalidate it.
///
/// The domain string is frozen at `"lifetime-ckpt/v1"` even though the
/// container format is now v2: the hash fingerprints the run
/// configuration, not the byte layout, and rolling it would orphan
/// every pre-v2 checkpoint (see the module docs).
pub fn config_hash(code: &FleetCode, env: &Environment, config: &FleetConfig) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(b"lifetime-ckpt/v1");
    eat(&code.canonical_bytes());
    eat(&env.canonical_bytes());
    eat(&config.canonical_bytes());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The standard IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample() -> Checkpoint {
        let mut t = LifetimeTally {
            epochs: 123,
            due_words: 4,
            sdc_words: 1,
            ..LifetimeTally::default()
        };
        t.due_weighted.push(3.75);
        t.sdc_weighted.push(0.015625);
        t.weight_sum.push(1.0);
        Checkpoint {
            config_hash: 0xDEAD_BEEF_0BAD_F00D,
            generation: 7,
            shard_count: 9,
            dimms: 1000,
            epoch_cursor: 246,
            done: vec![(0, t), (3, LifetimeTally::default()), (8, t)],
        }
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        assert_eq!(Checkpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn v1_payload_decodes_with_zero_weighted_sums() {
        let c = sample();
        let decoded = Checkpoint::decode(&c.encode_v1()).unwrap();
        // Everything but the weighted accumulators survives the trip...
        let mut expect = c.clone();
        for (_, t) in &mut expect.done {
            t.due_weighted = WeightedCount::default();
            t.sdc_weighted = WeightedCount::default();
            t.weight_sum = WeightedCount::default();
        }
        assert_eq!(decoded, expect);
        // ...and the v1 payload really is the legacy 96-byte-record size.
        assert_eq!(c.encode_v1().len(), 56 + 96 * 3);
        assert_eq!(c.encode().len(), 56 + 192 * 3);
    }

    #[test]
    fn every_v1_truncation_and_bitflip_fails() {
        let bytes = sample().encode_v1();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "v1 prefix of {len} bytes decoded"
            );
        }
        for bit in 0..bytes.len() * 8 {
            let mut mangled = bytes.clone();
            mangled[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Checkpoint::decode(&mangled).is_err(),
                "v1 flip of bit {bit} decoded"
            );
        }
    }

    #[test]
    fn every_truncation_fails() {
        let bytes = sample().encode();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn every_single_bitflip_fails() {
        let bytes = sample().encode();
        for bit in 0..bytes.len() * 8 {
            let mut mangled = bytes.clone();
            mangled[bit / 8] ^= 1 << (bit % 8);
            assert!(
                Checkpoint::decode(&mangled).is_err(),
                "flip of bit {bit} decoded"
            );
        }
    }

    #[test]
    fn unsorted_or_out_of_range_shards_fail() {
        let mut c = sample();
        c.done[1].0 = 0; // duplicate/descending
        assert_eq!(
            Checkpoint::decode(&c.encode()),
            Err(CheckpointError::BadStructure)
        );
        let mut c = sample();
        c.done[2].0 = 9; // == shard_count
        assert_eq!(
            Checkpoint::decode(&c.encode()),
            Err(CheckpointError::BadStructure)
        );
    }
}
