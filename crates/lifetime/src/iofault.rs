//! Deterministic I/O chaos: [`IoFaultPlan`].
//!
//! Where [`FaultPlan`](crate::FaultPlan) injects *execution* failures
//! (kills, hangs, delays), an `IoFaultPlan` injects *storage and sink*
//! failures into every durable-write path: the checkpoint store, the
//! service result cache, and wrapped telemetry sinks. Every decision is a
//! pure function of `(seed ⊕ domain, op index)` through the same
//! counter-based [`Rng`] streams the simulator uses, so a chaos run is
//! exactly reproducible: the same seed injects the same ENOSPC at the
//! same generation on every machine, every time.
//!
//! The op index is whatever natural counter the call site already has —
//! checkpoint saves key by **generation**, cache writes by
//! **config hash**, sink writes by **write ordinal** — so no mutable
//! injection state exists anywhere.
//!
//! # Fault classes and their contracts
//!
//! | Fault | Effect | Contract under chaos |
//! |---|---|---|
//! | `enospc` | durable write fails before any byte lands | loud `Err`, previous state intact |
//! | `short_write` | only half the payload reaches the temp file | silent torn record; CRC rejects it on read, fallback loads |
//! | `fsync_fail` | `fsync` reports failure after the write | loud `Err`, previous state intact |
//! | `rename_fail` | atomic rename into place fails | loud `Err`, previous state intact |
//! | `corrupt_record` | one bit flips *after* a successful commit | CRC rejects on read → treated as missing, recompute |
//! | `sink_fail` / `sink_block` | telemetry sink write errors / stalls | counted + warned, never affects tallies, never blocks the run |
//!
//! "Never wrong numbers, never a hang": a fault either surfaces as an
//! error with resumable prior state, or is detected by CRC and treated
//! as absence. No path returns corrupted data as if it were valid.

use std::io::{self, Write};

use muse_faultsim::Rng;

// Domain salts keep each fault class on a disjoint stream (same idiom as
// `Rng::for_shard` / `for_bias`): one seed drives independent decisions.
const D_ENOSPC: u64 = 0xE005_BCE0_05BC_E005;
const D_SHORT: u64 = 0x5407_5407_5407_5407;
const D_FSYNC: u64 = 0xF5FC_F5FC_F5FC_F5FC;
const D_RENAME: u64 = 0x2EBA_BE2E_BABE_2EBA;
const D_CORRUPT: u64 = 0xC0DE_C0DE_C0DE_C0DE;
const D_SINK: u64 = 0x51BB_51BB_51BB_51BB;

/// Deterministic I/O failure injection. All probabilities default to
/// zero (inject nothing); each decision method is a pure function of
/// `(seed, op)`.
#[derive(Debug, Clone, Copy)]
pub struct IoFaultPlan {
    /// Seed of the injection streams (domain-salted per fault class).
    pub seed: u64,
    /// Probability a durable write fails up front with an injected
    /// "no space left on device".
    pub enospc_prob: f64,
    /// Probability a durable write is torn: only half the payload
    /// reaches the file, which then commits "successfully" — the CRC
    /// layer must catch it on read.
    pub short_write_prob: f64,
    /// Probability `fsync` reports failure after a complete write.
    pub fsync_fail_prob: f64,
    /// Probability the atomic rename into place fails.
    pub rename_fail_prob: f64,
    /// Probability one bit of a record flips *after* a successful
    /// commit (bit rot between write and read-back).
    pub corrupt_record_prob: f64,
    /// Probability a wrapped telemetry-sink write returns an error.
    pub sink_fail_prob: f64,
    /// Stall per wrapped-sink write, in milliseconds (`0` disables) — a
    /// slow or blocked telemetry consumer.
    pub sink_block_ms: u64,
}

impl Default for IoFaultPlan {
    fn default() -> Self {
        Self {
            seed: 0x10FA_0171,
            enospc_prob: 0.0,
            short_write_prob: 0.0,
            fsync_fail_prob: 0.0,
            rename_fail_prob: 0.0,
            corrupt_record_prob: 0.0,
            sink_fail_prob: 0.0,
            sink_block_ms: 0,
        }
    }
}

fn decide(seed: u64, domain: u64, op: u64, p: f64) -> bool {
    p > 0.0 && Rng::for_cell(seed ^ domain, op, 0).chance(p)
}

impl IoFaultPlan {
    /// Does durable-write `op` fail with injected ENOSPC?
    pub fn enospc(&self, op: u64) -> bool {
        decide(self.seed, D_ENOSPC, op, self.enospc_prob)
    }

    /// Is durable-write `op` torn to half its payload?
    pub fn short_write(&self, op: u64) -> bool {
        decide(self.seed, D_SHORT, op, self.short_write_prob)
    }

    /// Does `fsync` fail for durable-write `op`?
    pub fn fsync_fails(&self, op: u64) -> bool {
        decide(self.seed, D_FSYNC, op, self.fsync_fail_prob)
    }

    /// Does the commit rename fail for durable-write `op`?
    pub fn rename_fails(&self, op: u64) -> bool {
        decide(self.seed, D_RENAME, op, self.rename_fail_prob)
    }

    /// Does record `op` rot after commit?
    pub fn corrupts_record(&self, op: u64) -> bool {
        decide(self.seed, D_CORRUPT, op, self.corrupt_record_prob)
    }

    /// Does the `op`-th wrapped-sink write fail?
    pub fn sink_fails(&self, op: u64) -> bool {
        decide(self.seed, D_SINK, op, self.sink_fail_prob)
    }

    /// True when any durable-write fault class is armed (used to skip
    /// the injection bookkeeping entirely on the common path).
    pub fn any_storage_faults(&self) -> bool {
        self.enospc_prob > 0.0
            || self.short_write_prob > 0.0
            || self.fsync_fail_prob > 0.0
            || self.rename_fail_prob > 0.0
            || self.corrupt_record_prob > 0.0
    }

    /// Wraps a telemetry sink in the chaos layer: per-write deterministic
    /// failures ([`Self::sink_fail_prob`]) and stalls
    /// ([`Self::sink_block_ms`]). The wrapper is what a chaos harness
    /// hands to `Tracer::new` to prove a misbehaving consumer can slow
    /// or lose telemetry but never corrupt tallies or hang the run.
    pub fn wrap_sink(&self, inner: Box<dyn Write + Send>) -> Box<dyn Write + Send> {
        Box::new(ChaosSink {
            inner,
            plan: *self,
            writes: 0,
        })
    }
}

/// The injected error for durable-write faults — message carries the
/// fault class and op index so test assertions and logs are precise.
pub fn injected_io_error(kind: &str, op: u64) -> io::Error {
    io::Error::other(format!("injected {kind} (io chaos, op {op})"))
}

struct ChaosSink {
    inner: Box<dyn Write + Send>,
    plan: IoFaultPlan,
    writes: u64,
}

impl Write for ChaosSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let op = self.writes;
        self.writes += 1;
        if self.plan.sink_block_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.sink_block_ms));
        }
        if self.plan.sink_fails(op) {
            return Err(injected_io_error("sink failure", op));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_domain_separated() {
        let plan = IoFaultPlan {
            seed: 42,
            enospc_prob: 0.5,
            short_write_prob: 0.5,
            fsync_fail_prob: 0.5,
            rename_fail_prob: 0.5,
            corrupt_record_prob: 0.5,
            sink_fail_prob: 0.5,
            ..IoFaultPlan::default()
        };
        // Same plan, same op → same answer, across every class.
        for op in 0..64 {
            assert_eq!(plan.enospc(op), plan.enospc(op));
            assert_eq!(plan.short_write(op), plan.short_write(op));
            assert_eq!(plan.fsync_fails(op), plan.fsync_fails(op));
            assert_eq!(plan.rename_fails(op), plan.rename_fails(op));
            assert_eq!(plan.corrupts_record(op), plan.corrupts_record(op));
            assert_eq!(plan.sink_fails(op), plan.sink_fails(op));
        }
        // The classes draw from disjoint streams: at p=0.5 over 64 ops
        // two identical streams would agree everywhere; salted streams
        // must not.
        let classes: [&dyn Fn(u64) -> bool; 5] = [
            &|op| plan.enospc(op),
            &|op| plan.short_write(op),
            &|op| plan.fsync_fails(op),
            &|op| plan.rename_fails(op),
            &|op| plan.corrupts_record(op),
        ];
        for (i, a) in classes.iter().enumerate() {
            for b in &classes[i + 1..] {
                assert!((0..64).any(|op| a(op) != b(op)));
            }
        }
    }

    #[test]
    fn zero_probabilities_inject_nothing() {
        let plan = IoFaultPlan::default();
        for op in 0..256 {
            assert!(!plan.enospc(op));
            assert!(!plan.short_write(op));
            assert!(!plan.fsync_fails(op));
            assert!(!plan.rename_fails(op));
            assert!(!plan.corrupts_record(op));
            assert!(!plan.sink_fails(op));
        }
        assert!(!plan.any_storage_faults());
    }

    #[test]
    fn chaos_sink_fails_deterministically_and_passes_data_through() {
        let plan = IoFaultPlan {
            seed: 7,
            sink_fail_prob: 0.5,
            ..IoFaultPlan::default()
        };
        let run = || {
            let mut ok = Vec::new();
            let buf: Vec<u8> = Vec::new();
            let mut sink = ChaosSink {
                inner: Box::new(buf),
                plan,
                writes: 0,
            };
            for i in 0u8..32 {
                ok.push(sink.write(&[i]).is_ok());
            }
            ok
        };
        let a = run();
        assert_eq!(a, run(), "sink failures must be deterministic");
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }
}
