//! The resumable sharded runner: a supervisor that executes a
//! [`ShardPlan`] shard by shard, retries failed shards with bounded
//! exponential backoff, periodically persists a two-generation
//! [`CheckpointStore`], and resumes bit-identically after any
//! interruption.
//!
//! # Guarantees
//!
//! * **Equivalence.** The merged tally of a sharded run — interrupted at
//!   any shard boundary any number of times, resumed on any machine with
//!   any thread count, with any shards recomputed after injected kills —
//!   is bit-identical to [`simulate_fleet`](crate::simulate_fleet)'s
//!   uninterrupted run (`tests/resume.rs` sweeps every boundary).
//! * **Crash safety.** Saves are atomic (write-temp, `fsync`, rename)
//!   and alternate between two generation slots, so the previous
//!   generation survives a crash mid-save; a corrupt newest generation
//!   falls back to the previous one and only recomputes what it lacked.
//! * **Config fencing.** Every checkpoint stores
//!   [`config_hash`](crate::config_hash); resuming under a different
//!   `(code, environment, config)` fails loudly instead of silently
//!   restarting or mixing tallies. Thread count is excluded from the
//!   hash — it must not invalidate a checkpoint.
//!
//! Failure injection ([`FaultPlan`]) is deterministic: every decision is
//! a pure function of `(fault seed, shard, attempt)` via
//! [`Rng::for_shard`], so the recovery paths are exercised reproducibly
//! by the test suite and CI rather than trusted.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use muse_faultsim::{Rng, SimEngine, Tally};
use muse_telemetry::{estimate_eta_ms, ProgressSnapshot, TraceEvent};

use crate::checkpoint::{config_hash, Checkpoint, CheckpointStore, Corruption};
use crate::iofault::IoFaultPlan;
use crate::shard::ShardPlan;
use crate::sim::{arrival_probabilities, run_fleet_range};
use crate::telemetry::{
    ci_half_widths, elapsed_ms, saturated_channels, FleetTelemetry, RunInstruments,
};
use crate::{Environment, FleetCode, FleetConfig, LifetimeReport, LifetimeTally};

/// Supervisor policy for one sharded run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Shard count (`0` ⇒ the [`ShardPlan`] default). A resumed run
    /// adopts the checkpoint's shard count instead.
    pub shards: u32,
    /// Directory for checkpoints; `None` runs sharded but unpersisted.
    pub checkpoint_dir: Option<PathBuf>,
    /// File-name prefix inside the directory (one prefix per concurrent
    /// run — e.g. per scenario-matrix cell).
    pub checkpoint_prefix: String,
    /// Persist a generation after this many newly completed shards.
    pub checkpoint_every: u32,
    /// Resume from the newest valid checkpoint instead of starting clean.
    pub resume: bool,
    /// Retries per shard before the run fails (injected kills consume
    /// attempts).
    pub max_retries: u32,
    /// First retry backoff in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Stop (checkpoint and return [`ShardedOutcome::Interrupted`]) after
    /// this many shards have been run *in this invocation* — the
    /// interruption hook used by the boundary-sweep tests and the CLI's
    /// crash injection.
    pub stop_after_shards: Option<u64>,
    /// Per-shard watchdog: an attempt that has not produced its tally
    /// within this many milliseconds is killed (the worker thread is
    /// abandoned, its late result discarded) and retried with backoff —
    /// safe because a recompute is bit-identical by construction.
    /// `None` disables the watchdog and runs attempts inline.
    pub shard_timeout_ms: Option<u64>,
    /// Cooperative drain flag, checked at every shard boundary: once
    /// set, the run checkpoints and returns
    /// [`ShardedOutcome::Interrupted`] exactly like
    /// [`Self::stop_after_shards`]. The service daemon points this at
    /// its SIGTERM/SIGINT flag so an in-flight job drains to resumable
    /// state within one shard's worth of work.
    pub stop: Option<Arc<AtomicBool>>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            checkpoint_dir: None,
            checkpoint_prefix: "fleet".to_string(),
            checkpoint_every: 1,
            resume: false,
            max_retries: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            stop_after_shards: None,
            shard_timeout_ms: None,
            stop: None,
        }
    }
}

/// Deterministic failure injection for the sharded runner. Every decision
/// derives from [`Rng::for_shard`]`(seed, shard, attempt)` — disjoint
/// from the simulation's own `(DIMM, epoch)` streams, so injection never
/// perturbs tallies, only the path taken to compute them.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the injection streams.
    pub seed: u64,
    /// Probability that a given (shard, attempt) is killed mid-flight
    /// (half the shard's work is done, then discarded).
    pub kill_prob: f64,
    /// Upper bound (exclusive, in milliseconds) of a uniform completion
    /// delay per shard; `0` disables delays.
    pub delay_ms_max: u64,
    /// Corrupt this generation's checkpoint file right after it is
    /// written — the next resume must fall back to the previous one.
    pub corrupt_generation: Option<(u64, Corruption)>,
    /// Probability that a given (shard, attempt) hangs for
    /// [`Self::hang_ms`] before producing its result — the stall a
    /// [`RunnerConfig::shard_timeout_ms`] watchdog exists to cut short.
    pub hang_prob: f64,
    /// Duration of an injected hang, in milliseconds.
    pub hang_ms: u64,
    /// Deterministic I/O chaos threaded into the checkpoint store (and,
    /// via the service daemon, the result cache): injected ENOSPC, torn
    /// writes, fsync/rename failures, post-commit bit rot.
    pub io: Option<IoFaultPlan>,
}

impl FaultPlan {
    /// Seed of the injection streams when no plan is given (keeps the
    /// backoff-jitter stream defined even for fault-free runs).
    pub const DEFAULT_SEED: u64 = 0xFA17;
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: Self::DEFAULT_SEED,
            kill_prob: 0.0,
            delay_ms_max: 0,
            corrupt_generation: None,
            hang_prob: 0.0,
            hang_ms: 60_000,
            io: None,
        }
    }
}

impl FaultPlan {
    /// Does this plan kill `shard`'s `attempt`-th execution?
    pub fn kills(&self, shard: u32, attempt: u32) -> bool {
        self.kill_prob > 0.0
            && Rng::for_shard(self.seed, shard as u64, attempt as u64).chance(self.kill_prob)
    }

    /// Does this plan hang `shard`'s `attempt`-th execution?
    pub fn hangs(&self, shard: u32, attempt: u32) -> bool {
        self.hang_prob > 0.0
            && Rng::for_shard(
                self.seed ^ 0x4A46_4A46_4A46_4A46,
                shard as u64,
                attempt as u64,
            )
            .chance(self.hang_prob)
    }

    /// Injected completion delay for `shard`, in milliseconds.
    pub fn delay_ms(&self, shard: u32) -> u64 {
        if self.delay_ms_max == 0 {
            return 0;
        }
        Rng::for_shard(self.seed ^ 0xDE1A_DE1A_DE1A_DE1A, shard as u64, 0).below(self.delay_ms_max)
    }
}

/// Backoff before retrying `shard`'s failed `attempt`: exponential in
/// the attempt (base [`RunnerConfig::backoff_base_ms`], capped at
/// [`RunnerConfig::backoff_cap_ms`]) with deterministic ±50% jitter
/// drawn from a salted [`Rng::for_shard`] stream — mass shard retries
/// across a fleet must not synchronize into thundering herds. Sleep
/// duration never feeds into a tally, so determinism holds regardless.
pub fn retry_backoff_ms(runner: &RunnerConfig, fault_seed: u64, shard: u32, attempt: u32) -> u64 {
    let base = runner
        .backoff_base_ms
        .saturating_mul(1u64 << attempt.min(20))
        .min(runner.backoff_cap_ms);
    if base == 0 {
        return 0;
    }
    // below(1000) ∈ [0, 1000) maps to a factor in [0.5, 1.5).
    let r = Rng::for_shard(
        fault_seed ^ 0x7177_E201_7177_E201,
        shard as u64,
        attempt as u64,
    )
    .below(1000);
    (base / 2) + base.saturating_mul(r) / 1000
}

/// What a resumed run found on disk.
#[derive(Debug, Clone)]
pub struct ResumeInfo {
    /// Generation of the checkpoint actually loaded.
    pub generation: u64,
    /// Shards already completed by the loaded checkpoint.
    pub shards_done: u32,
    /// Total shards of the (adopted) plan.
    pub total_shards: u32,
    /// DIMMs covered by the completed shards.
    pub dimms_done: u64,
    /// Machine-years already covered (drives the resume banner).
    pub machine_years_done: f64,
    /// True when the newest generation was corrupt and the previous one
    /// was used instead.
    pub fell_back: bool,
}

/// Counters describing how a sharded run executed.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Shards in the plan.
    pub total_shards: u32,
    /// Shards whose tallies came from the loaded checkpoint.
    pub shards_resumed: u32,
    /// Shards computed in this invocation.
    pub shards_run: u32,
    /// Attempts lost to injected kills or watchdog timeouts (each
    /// retried with backoff).
    pub retries: u32,
    /// Attempts killed by the shard watchdog (a subset of `retries`).
    pub watchdog_kills: u32,
    /// Checkpoint generations written in this invocation.
    pub checkpoint_writes: u32,
    /// Resume details when a checkpoint was loaded.
    pub resume: Option<ResumeInfo>,
}

/// Result of [`run_sharded`]: either the fleet report, or a clean
/// interruption with all completed shards persisted.
///
/// The variants are deliberately unboxed: one outcome exists per fleet
/// cell, so the size gap between them never matters.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ShardedOutcome {
    /// The run finished; tallies are bit-identical to an uninterrupted
    /// [`simulate_fleet`](crate::simulate_fleet).
    Complete {
        /// The fleet report.
        report: LifetimeReport,
        /// Execution counters.
        stats: RunStats,
    },
    /// The run stopped at a shard boundary ([`RunnerConfig::
    /// stop_after_shards`]); completed shards are checkpointed.
    Interrupted {
        /// Execution counters up to the interruption.
        stats: RunStats,
    },
}

impl ShardedOutcome {
    /// The execution counters of either outcome.
    pub fn stats(&self) -> &RunStats {
        match self {
            Self::Complete { stats, .. } | Self::Interrupted { stats } => stats,
        }
    }

    /// The report, when the run completed.
    pub fn report(&self) -> Option<&LifetimeReport> {
        match self {
            Self::Complete { report, .. } => Some(report),
            Self::Interrupted { .. } => None,
        }
    }
}

/// Why a sharded run could not produce a result.
#[derive(Debug)]
pub enum RunnerError {
    /// The checkpoint on disk was produced by a different
    /// `(code, environment, config)`; resuming would mix incompatible
    /// tallies. Delete the checkpoint or restore the original
    /// parameters.
    ConfigHashMismatch {
        /// Hash of the parameters this run was invoked with.
        expected: u64,
        /// Hash stored in the checkpoint.
        found: u64,
    },
    /// A shard exhausted [`RunnerConfig::max_retries`] attempts.
    ShardFailed {
        /// The failing shard.
        shard: u32,
        /// Attempts made.
        attempts: u32,
    },
    /// Checkpoint I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConfigHashMismatch { expected, found } => write!(
                f,
                "checkpoint config-hash mismatch: run configured as {expected:#018x} but the \
                 checkpoint was written under {found:#018x}; refusing to resume (delete the \
                 checkpoint directory to start over, or restore the original parameters)"
            ),
            Self::ShardFailed { shard, attempts } => {
                write!(f, "shard {shard} failed after {attempts} attempts")
            }
            Self::Io(e) => write!(f, "checkpoint I/O: {e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<std::io::Error> for RunnerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Executes one fleet run through the resumable sharded supervisor.
///
/// The fleet is split by a [`ShardPlan`]; each shard runs on
/// [`FleetConfig::threads`] workers and its tally partial is recorded in
/// a completion map. With a checkpoint directory configured, the map is
/// persisted every [`RunnerConfig::checkpoint_every`] shards (atomic
/// two-generation writes), and `resume: true` continues from the newest
/// valid checkpoint — recomputing nothing that was persisted, and
/// everything that was not.
///
/// # Errors
///
/// [`RunnerError::ConfigHashMismatch`] when resuming under changed
/// parameters, [`RunnerError::ShardFailed`] when a shard exhausts its
/// retries, [`RunnerError::Io`] on checkpoint I/O failure.
///
/// # Examples
///
/// ```
/// use muse_lifetime::{run_sharded, FleetCode, FleetConfig, RunnerConfig};
///
/// let code = FleetCode::muse(muse_core::presets::muse_80_69());
/// let env = muse_lifetime::chipkill_heavy();
/// let config = FleetConfig { dimms: 48, years: 1.0, ..FleetConfig::default() };
/// let outcome = run_sharded(&code, &env, &config,
///     &RunnerConfig { shards: 6, ..RunnerConfig::default() }, None).unwrap();
/// // Sharded execution is bit-identical to the plain run.
/// let plain = muse_lifetime::simulate_fleet(&code, &env, &config);
/// assert_eq!(outcome.report().unwrap().tally, plain.tally);
/// ```
pub fn run_sharded(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
    runner: &RunnerConfig,
    faults: Option<&FaultPlan>,
) -> Result<ShardedOutcome, RunnerError> {
    run_sharded_with(
        code,
        env,
        config,
        runner,
        faults,
        &FleetTelemetry::disabled(),
    )
}

/// [`run_sharded`] with observability hooks: trace events, metrics, and
/// heartbeats flow through the given [`FleetTelemetry`].
///
/// Telemetry is strictly observational — it reads wall clocks and
/// completed tallies but never touches an RNG stream, so the outcome
/// (tallies, weighted sums, checkpoint contents) is bit-identical to a
/// telemetry-off run at any thread count (`tests/telemetry.rs`).
///
/// # Errors
///
/// Exactly those of [`run_sharded`]; telemetry sink failures degrade to
/// warnings, never errors.
pub fn run_sharded_with(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
    runner: &RunnerConfig,
    faults: Option<&FaultPlan>,
    telemetry: &FleetTelemetry<'_>,
) -> Result<ShardedOutcome, RunnerError> {
    let hash = config_hash(code, env, config);
    let mut plan = ShardPlan::new(config.dimms, runner.shards);
    let store = match &runner.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open_with_faults(
            dir,
            &runner.checkpoint_prefix,
            faults.and_then(|f| f.io),
        )?),
        None => None,
    };

    let mut done: BTreeMap<u32, LifetimeTally> = BTreeMap::new();
    let mut generation = 0u64;
    let mut stats = RunStats::default();
    let run_started = Instant::now();
    let instruments = telemetry.metrics.map(RunInstruments::resolve);
    let emit = |event: &TraceEvent| {
        if let Some(tracer) = telemetry.tracer {
            tracer.emit(event);
        }
    };
    // Metrics snapshots warn on failure; the io_errors counter makes the
    // failure visible to scrapers of whatever snapshot does land.
    let snapshot = |instruments: &Option<RunInstruments>| {
        if !telemetry.snapshot_metrics() {
            if let Some(ins) = instruments {
                ins.io_errors.inc();
            }
        }
    };

    if let Some(store) = &store {
        if runner.resume {
            if let Some(loaded) = store.load() {
                let ckpt = loaded.checkpoint;
                if ckpt.config_hash != hash {
                    return Err(RunnerError::ConfigHashMismatch {
                        expected: hash,
                        found: ckpt.config_hash,
                    });
                }
                // The stored plan wins: shard boundaries must match the
                // recorded partials (the hash already fenced `dimms`).
                plan = ShardPlan::new(ckpt.dimms, ckpt.shard_count);
                generation = ckpt.generation;
                done.extend(ckpt.done.iter().copied());
                let dimms_done: u64 = done.keys().map(|&s| len_of(&plan, s)).sum();
                stats.resume = Some(ResumeInfo {
                    generation,
                    shards_done: done.len() as u32,
                    total_shards: plan.count(),
                    dimms_done,
                    machine_years_done: dimms_done as f64 * config.years
                        / config.dimms_per_machine as f64,
                    fell_back: loaded.fell_back,
                });
            }
        } else {
            store.clear()?;
        }
    }

    stats.total_shards = plan.count();
    stats.shards_resumed = done.len() as u32;

    emit(&TraceEvent::RunStart {
        label: telemetry.label.clone(),
        total_shards: plan.count(),
        dimms_per_shard: if plan.count() == 0 {
            0
        } else {
            len_of(&plan, 0)
        },
        estimator: config.estimator.name().to_string(),
        threads: SimEngine::new(config.threads).threads() as u32,
    });
    for (channel, requested_bias, cap) in
        saturated_channels(&arrival_probabilities(env, config), config.estimator)
    {
        emit(&TraceEvent::WeightCapSaturated {
            channel: channel.to_string(),
            requested_bias,
            cap,
        });
        telemetry.warn(&format!(
            "warning: importance-sampling bias {requested_bias} saturates the \
             per-epoch extra-arrival cap ({cap}) on the {channel} channel; \
             effective inflation is lower than requested"
        ));
    }
    if let Some(resume) = &stats.resume {
        emit(&TraceEvent::ResumeAdopted {
            generation: resume.generation,
            shards_done: resume.shards_done,
            total_shards: resume.total_shards,
            fell_back: resume.fell_back,
        });
        if resume.fell_back {
            telemetry.warn(&format!(
                "warning: newest checkpoint generation was corrupt; fell back \
                 to generation {} ({}/{} shards), recomputing the rest",
                resume.generation, resume.shards_done, resume.total_shards
            ));
        }
    }

    let epochs_per_dimm = config.epochs();
    let mut pending_since_save = 0u32;
    let save = |done: &BTreeMap<u32, LifetimeTally>,
                generation: &mut u64,
                stats: &mut RunStats|
     -> Result<(), RunnerError> {
        let Some(store) = &store else {
            return Ok(());
        };
        *generation += 1;
        let dimms_done: u64 = done.keys().map(|&s| len_of(&plan, s)).sum();
        let write_started = Instant::now();
        store.save(&Checkpoint {
            config_hash: hash,
            generation: *generation,
            shard_count: plan.count(),
            dimms: plan.dimms(),
            epoch_cursor: dimms_done * epochs_per_dimm,
            done: done.iter().map(|(&s, &t)| (s, t)).collect(),
        })?;
        let write_ms = elapsed_ms(write_started);
        stats.checkpoint_writes += 1;
        emit(&TraceEvent::CheckpointWritten {
            generation: *generation,
            shards_done: done.len() as u32,
            write_ms,
        });
        if let Some(ins) = &instruments {
            ins.checkpoint_writes.inc();
            ins.checkpoint_write_ms.observe(write_ms);
        }
        if let Some((target, kind)) = faults.and_then(|f| f.corrupt_generation) {
            if *generation == target {
                store.corrupt(target, kind)?;
            }
        }
        Ok(())
    };

    let mut trials_prev = muse_faultsim::trials_completed();
    for shard in 0..plan.count() {
        if done.contains_key(&shard) {
            continue;
        }
        let drain = runner
            .stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::Relaxed));
        if drain
            || runner
                .stop_after_shards
                .is_some_and(|stop| stats.shards_run as u64 >= stop)
        {
            if pending_since_save > 0 {
                save(&done, &mut generation, &mut stats)?;
            }
            emit(&TraceEvent::RunEnd {
                shards_done: done.len() as u32,
                wall_ms: elapsed_ms(run_started),
                retries: u64::from(stats.retries),
            });
            snapshot(&instruments);
            return Ok(ShardedOutcome::Interrupted { stats });
        }
        let range = plan.range(shard);
        emit(&TraceEvent::ShardStart {
            shard,
            dimm_lo: range.start,
            dimm_hi: range.end,
        });
        let shard_started = Instant::now();
        let mut attempt = 0u32;
        let fault_seed = faults.map_or(FaultPlan::DEFAULT_SEED, |f| f.seed);
        let tally = 'attempts: loop {
            let failure: String = 'fail: {
                if faults.is_some_and(|f| f.kills(shard, attempt)) {
                    // Killed mid-flight: half the shard's work happens,
                    // then the worker dies and its partial tally is
                    // discarded — the retry recomputes the shard from
                    // its streams.
                    let mid = range.start + (range.end - range.start) / 2;
                    let _ = run_fleet_range(code, env, config, range.start..mid);
                    break 'fail "injected kill".to_string();
                }
                // An injected hang stalls the attempt; a watchdog cuts
                // the stall short, without one it merely delays.
                let hang_ms = faults
                    .filter(|f| f.hangs(shard, attempt))
                    .map_or(0, |f| f.hang_ms);
                match runner.shard_timeout_ms {
                    Some(timeout_ms) => {
                        match run_attempt_watchdogged(
                            code,
                            env,
                            config,
                            range.clone(),
                            hang_ms,
                            timeout_ms,
                        ) {
                            Some(t) => break 'attempts t,
                            None => {
                                stats.watchdog_kills += 1;
                                if let Some(ins) = &instruments {
                                    ins.watchdog_kills.inc();
                                }
                                break 'fail format!("watchdog timeout after {timeout_ms}ms");
                            }
                        }
                    }
                    None => {
                        if hang_ms > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(hang_ms));
                        }
                        break 'attempts run_fleet_range(code, env, config, range.clone());
                    }
                }
            };
            stats.retries += 1;
            if attempt >= runner.max_retries {
                return Err(RunnerError::ShardFailed {
                    shard,
                    attempts: attempt + 1,
                });
            }
            let backoff = retry_backoff_ms(runner, fault_seed, shard, attempt);
            emit(&TraceEvent::ShardRetry {
                shard,
                attempt,
                backoff_ms: backoff,
                error: failure.clone(),
            });
            if let Some(ins) = &instruments {
                ins.shard_retries.inc();
            }
            telemetry.warn(&format!(
                "warning: shard {shard} attempt {attempt} failed ({failure}); \
                 retrying after {backoff}ms backoff"
            ));
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            attempt += 1;
        };
        if let Some(delay) = faults.map(|f| f.delay_ms(shard)).filter(|&d| d > 0) {
            std::thread::sleep(std::time::Duration::from_millis(delay));
        }
        let wall_ms = elapsed_ms(shard_started);
        emit(&TraceEvent::ShardEnd {
            shard,
            wall_ms,
            dimms: range.end - range.start,
        });
        done.insert(shard, tally);
        stats.shards_run += 1;

        if let Some(ins) = &instruments {
            let trials_now = muse_faultsim::trials_completed();
            let trials_delta = trials_now.saturating_sub(trials_prev);
            trials_prev = trials_now;
            ins.shards_completed.inc();
            ins.dimms_simulated.add(range.end - range.start);
            ins.sim_trials.add(trials_delta);
            ins.due_events.add(tally.due_words + tally.data_loss_events);
            ins.sdc_events.add(tally.sdc_words);
            ins.shard_wall_ms.observe(wall_ms);
            if wall_ms > 0 {
                ins.trials_per_sec
                    .set(trials_delta as f64 * 1000.0 / wall_ms as f64);
            }
        }
        if telemetry.tracer.is_some() || telemetry.heartbeat.is_some() || instruments.is_some() {
            let mut merged = LifetimeTally::default();
            for t in done.values() {
                merged.merge(*t);
            }
            let dimms_done: u64 = done.keys().map(|&s| len_of(&plan, s)).sum();
            let machine_years_done =
                dimms_done as f64 * config.years / f64::from(config.dimms_per_machine);
            let (due_ci_half, sdc_ci_half) = ci_half_widths(config, &merged, dimms_done);
            emit(&TraceEvent::Heartbeat {
                shards_done: done.len() as u32,
                total_shards: plan.count(),
                machine_years: machine_years_done,
                due_ci_half,
                sdc_ci_half,
            });
            if let Some(ins) = &instruments {
                ins.machine_years.set(machine_years_done);
                ins.due_weighted_sum.set(merged.due_weighted.sum());
                ins.sdc_weighted_sum.set(merged.sdc_weighted.sum());
                ins.trace_dropped.set(telemetry.dropped_events() as f64);
                ins.trace_io_errors.set(telemetry.io_errors() as f64);
            }
            if let Some(heartbeat) = &telemetry.heartbeat {
                heartbeat(&ProgressSnapshot {
                    label: telemetry.label.clone(),
                    shards_done: done.len() as u32,
                    total_shards: plan.count(),
                    machine_years_done,
                    machine_years_total: config.machine_years(),
                    eta_ms: estimate_eta_ms(
                        elapsed_ms(run_started),
                        u64::from(stats.shards_run),
                        u64::from(plan.count() - stats.shards_resumed),
                    ),
                    due_ci_half,
                    sdc_ci_half,
                    dropped_events: telemetry.dropped_events(),
                });
            }
            snapshot(&instruments);
        }

        pending_since_save += 1;
        if pending_since_save >= runner.checkpoint_every.max(1) {
            save(&done, &mut generation, &mut stats)?;
            pending_since_save = 0;
        }
    }

    if pending_since_save > 0 {
        save(&done, &mut generation, &mut stats)?;
    }

    emit(&TraceEvent::RunEnd {
        shards_done: done.len() as u32,
        wall_ms: elapsed_ms(run_started),
        retries: u64::from(stats.retries),
    });
    if let Some(ins) = &instruments {
        ins.trace_dropped.set(telemetry.dropped_events() as f64);
        ins.trace_io_errors.set(telemetry.io_errors() as f64);
    }
    snapshot(&instruments);

    // Merge in ascending shard order (pure field-wise sums — identical to
    // the unsharded run's DIMM-order merge).
    let mut total = LifetimeTally::default();
    for tally in done.values() {
        total.merge(*tally);
    }
    Ok(ShardedOutcome::Complete {
        report: LifetimeReport::new(code, env, config, total),
        stats,
    })
}

/// Runs one shard attempt under the watchdog: the computation happens on
/// a detached worker thread and the supervisor waits at most
/// `timeout_ms` for its tally. On timeout the worker is abandoned — it
/// holds only clones and a dead channel sender, so a late result is
/// silently dropped and an injected hang leaks nothing past `hang_ms` —
/// and `None` signals a watchdog kill, safe to retry because every
/// recompute is bit-identical by construction.
fn run_attempt_watchdogged(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
    range: std::ops::Range<u64>,
    hang_ms: u64,
    timeout_ms: u64,
) -> Option<LifetimeTally> {
    let (tx, rx) = std::sync::mpsc::channel();
    let code = code.clone();
    let env = env.clone();
    let config = *config;
    let spawned = std::thread::Builder::new()
        .name("muse-shard".into())
        .spawn(move || {
            if hang_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(hang_ms));
            }
            let _ = tx.send(run_fleet_range(&code, &env, &config, range));
        });
    if spawned.is_err() {
        // Spawn failure (resource exhaustion) counts as a failed attempt
        // and goes through the same retry-with-backoff path.
        return None;
    }
    rx.recv_timeout(std::time::Duration::from_millis(timeout_ms))
        .ok()
}

fn len_of(plan: &ShardPlan, shard: u32) -> u64 {
    let r = plan.range(shard);
    r.end - r.start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_jitter_is_bounded_deterministic_and_desynchronized() {
        let runner = RunnerConfig {
            backoff_base_ms: 100,
            backoff_cap_ms: 10_000,
            ..RunnerConfig::default()
        };
        for attempt in 0..6 {
            let base = 100u64 << attempt;
            let mut distinct = std::collections::BTreeSet::new();
            for shard in 0..32 {
                let b = retry_backoff_ms(&runner, 0xFA17, shard, attempt);
                assert_eq!(b, retry_backoff_ms(&runner, 0xFA17, shard, attempt));
                assert!(
                    b >= base / 2 && b < base + base / 2 + 1,
                    "attempt {attempt} shard {shard}: {b} outside ±50% of {base}"
                );
                distinct.insert(b);
            }
            // The whole point: concurrent retries of many shards must
            // not all sleep the same duration.
            assert!(distinct.len() > 8, "jitter too coarse: {distinct:?}");
        }
        // Zero base stays zero (tests rely on instant retries).
        let fast = RunnerConfig {
            backoff_base_ms: 0,
            ..RunnerConfig::default()
        };
        assert_eq!(retry_backoff_ms(&fast, 0xFA17, 3, 2), 0);
    }

    #[test]
    fn hang_decisions_are_deterministic_and_separate_from_kills() {
        let plan = FaultPlan {
            kill_prob: 0.5,
            hang_prob: 0.5,
            ..FaultPlan::default()
        };
        let kills: Vec<bool> = (0..64).map(|s| plan.kills(s, 0)).collect();
        let hangs: Vec<bool> = (0..64).map(|s| plan.hangs(s, 0)).collect();
        assert_eq!(kills, (0..64).map(|s| plan.kills(s, 0)).collect::<Vec<_>>());
        assert_eq!(hangs, (0..64).map(|s| plan.hangs(s, 0)).collect::<Vec<_>>());
        assert_ne!(kills, hangs, "hang stream must be salted away from kills");
    }
}
