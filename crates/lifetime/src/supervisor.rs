//! The resumable sharded runner: a supervisor that executes a
//! [`ShardPlan`] shard by shard, retries failed shards with bounded
//! exponential backoff, periodically persists a two-generation
//! [`CheckpointStore`], and resumes bit-identically after any
//! interruption.
//!
//! # Guarantees
//!
//! * **Equivalence.** The merged tally of a sharded run — interrupted at
//!   any shard boundary any number of times, resumed on any machine with
//!   any thread count, with any shards recomputed after injected kills —
//!   is bit-identical to [`simulate_fleet`](crate::simulate_fleet)'s
//!   uninterrupted run (`tests/resume.rs` sweeps every boundary).
//! * **Crash safety.** Saves are atomic (write-temp, `fsync`, rename)
//!   and alternate between two generation slots, so the previous
//!   generation survives a crash mid-save; a corrupt newest generation
//!   falls back to the previous one and only recomputes what it lacked.
//! * **Config fencing.** Every checkpoint stores
//!   [`config_hash`](crate::config_hash); resuming under a different
//!   `(code, environment, config)` fails loudly instead of silently
//!   restarting or mixing tallies. Thread count is excluded from the
//!   hash — it must not invalidate a checkpoint.
//!
//! Failure injection ([`FaultPlan`]) is deterministic: every decision is
//! a pure function of `(fault seed, shard, attempt)` via
//! [`Rng::for_shard`], so the recovery paths are exercised reproducibly
//! by the test suite and CI rather than trusted.

use std::collections::BTreeMap;
use std::path::PathBuf;

use muse_faultsim::{Rng, Tally};

use crate::checkpoint::{config_hash, Checkpoint, CheckpointStore, Corruption};
use crate::shard::ShardPlan;
use crate::sim::run_fleet_range;
use crate::{Environment, FleetCode, FleetConfig, LifetimeReport, LifetimeTally};

/// Supervisor policy for one sharded run.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Shard count (`0` ⇒ the [`ShardPlan`] default). A resumed run
    /// adopts the checkpoint's shard count instead.
    pub shards: u32,
    /// Directory for checkpoints; `None` runs sharded but unpersisted.
    pub checkpoint_dir: Option<PathBuf>,
    /// File-name prefix inside the directory (one prefix per concurrent
    /// run — e.g. per scenario-matrix cell).
    pub checkpoint_prefix: String,
    /// Persist a generation after this many newly completed shards.
    pub checkpoint_every: u32,
    /// Resume from the newest valid checkpoint instead of starting clean.
    pub resume: bool,
    /// Retries per shard before the run fails (injected kills consume
    /// attempts).
    pub max_retries: u32,
    /// First retry backoff in milliseconds (doubles per attempt).
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Stop (checkpoint and return [`ShardedOutcome::Interrupted`]) after
    /// this many shards have been run *in this invocation* — the
    /// interruption hook used by the boundary-sweep tests and the CLI's
    /// crash injection.
    pub stop_after_shards: Option<u64>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            checkpoint_dir: None,
            checkpoint_prefix: "fleet".to_string(),
            checkpoint_every: 1,
            resume: false,
            max_retries: 5,
            backoff_base_ms: 10,
            backoff_cap_ms: 1000,
            stop_after_shards: None,
        }
    }
}

/// Deterministic failure injection for the sharded runner. Every decision
/// derives from [`Rng::for_shard`]`(seed, shard, attempt)` — disjoint
/// from the simulation's own `(DIMM, epoch)` streams, so injection never
/// perturbs tallies, only the path taken to compute them.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Seed of the injection streams.
    pub seed: u64,
    /// Probability that a given (shard, attempt) is killed mid-flight
    /// (half the shard's work is done, then discarded).
    pub kill_prob: f64,
    /// Upper bound (exclusive, in milliseconds) of a uniform completion
    /// delay per shard; `0` disables delays.
    pub delay_ms_max: u64,
    /// Corrupt this generation's checkpoint file right after it is
    /// written — the next resume must fall back to the previous one.
    pub corrupt_generation: Option<(u64, Corruption)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0xFA17,
            kill_prob: 0.0,
            delay_ms_max: 0,
            corrupt_generation: None,
        }
    }
}

impl FaultPlan {
    /// Does this plan kill `shard`'s `attempt`-th execution?
    pub fn kills(&self, shard: u32, attempt: u32) -> bool {
        self.kill_prob > 0.0
            && Rng::for_shard(self.seed, shard as u64, attempt as u64).chance(self.kill_prob)
    }

    /// Injected completion delay for `shard`, in milliseconds.
    pub fn delay_ms(&self, shard: u32) -> u64 {
        if self.delay_ms_max == 0 {
            return 0;
        }
        Rng::for_shard(self.seed ^ 0xDE1A_DE1A_DE1A_DE1A, shard as u64, 0).below(self.delay_ms_max)
    }
}

/// What a resumed run found on disk.
#[derive(Debug, Clone)]
pub struct ResumeInfo {
    /// Generation of the checkpoint actually loaded.
    pub generation: u64,
    /// Shards already completed by the loaded checkpoint.
    pub shards_done: u32,
    /// Total shards of the (adopted) plan.
    pub total_shards: u32,
    /// DIMMs covered by the completed shards.
    pub dimms_done: u64,
    /// Machine-years already covered (drives the resume banner).
    pub machine_years_done: f64,
    /// True when the newest generation was corrupt and the previous one
    /// was used instead.
    pub fell_back: bool,
}

/// Counters describing how a sharded run executed.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Shards in the plan.
    pub total_shards: u32,
    /// Shards whose tallies came from the loaded checkpoint.
    pub shards_resumed: u32,
    /// Shards computed in this invocation.
    pub shards_run: u32,
    /// Attempts lost to injected kills (each retried with backoff).
    pub retries: u32,
    /// Checkpoint generations written in this invocation.
    pub checkpoint_writes: u32,
    /// Resume details when a checkpoint was loaded.
    pub resume: Option<ResumeInfo>,
}

/// Result of [`run_sharded`]: either the fleet report, or a clean
/// interruption with all completed shards persisted.
///
/// The variants are deliberately unboxed: one outcome exists per fleet
/// cell, so the size gap between them never matters.
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum ShardedOutcome {
    /// The run finished; tallies are bit-identical to an uninterrupted
    /// [`simulate_fleet`](crate::simulate_fleet).
    Complete {
        /// The fleet report.
        report: LifetimeReport,
        /// Execution counters.
        stats: RunStats,
    },
    /// The run stopped at a shard boundary ([`RunnerConfig::
    /// stop_after_shards`]); completed shards are checkpointed.
    Interrupted {
        /// Execution counters up to the interruption.
        stats: RunStats,
    },
}

impl ShardedOutcome {
    /// The execution counters of either outcome.
    pub fn stats(&self) -> &RunStats {
        match self {
            Self::Complete { stats, .. } | Self::Interrupted { stats } => stats,
        }
    }

    /// The report, when the run completed.
    pub fn report(&self) -> Option<&LifetimeReport> {
        match self {
            Self::Complete { report, .. } => Some(report),
            Self::Interrupted { .. } => None,
        }
    }
}

/// Why a sharded run could not produce a result.
#[derive(Debug)]
pub enum RunnerError {
    /// The checkpoint on disk was produced by a different
    /// `(code, environment, config)`; resuming would mix incompatible
    /// tallies. Delete the checkpoint or restore the original
    /// parameters.
    ConfigHashMismatch {
        /// Hash of the parameters this run was invoked with.
        expected: u64,
        /// Hash stored in the checkpoint.
        found: u64,
    },
    /// A shard exhausted [`RunnerConfig::max_retries`] attempts.
    ShardFailed {
        /// The failing shard.
        shard: u32,
        /// Attempts made.
        attempts: u32,
    },
    /// Checkpoint I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RunnerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ConfigHashMismatch { expected, found } => write!(
                f,
                "checkpoint config-hash mismatch: run configured as {expected:#018x} but the \
                 checkpoint was written under {found:#018x}; refusing to resume (delete the \
                 checkpoint directory to start over, or restore the original parameters)"
            ),
            Self::ShardFailed { shard, attempts } => {
                write!(f, "shard {shard} failed after {attempts} attempts")
            }
            Self::Io(e) => write!(f, "checkpoint I/O: {e}"),
        }
    }
}

impl std::error::Error for RunnerError {}

impl From<std::io::Error> for RunnerError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Executes one fleet run through the resumable sharded supervisor.
///
/// The fleet is split by a [`ShardPlan`]; each shard runs on
/// [`FleetConfig::threads`] workers and its tally partial is recorded in
/// a completion map. With a checkpoint directory configured, the map is
/// persisted every [`RunnerConfig::checkpoint_every`] shards (atomic
/// two-generation writes), and `resume: true` continues from the newest
/// valid checkpoint — recomputing nothing that was persisted, and
/// everything that was not.
///
/// # Errors
///
/// [`RunnerError::ConfigHashMismatch`] when resuming under changed
/// parameters, [`RunnerError::ShardFailed`] when a shard exhausts its
/// retries, [`RunnerError::Io`] on checkpoint I/O failure.
///
/// # Examples
///
/// ```
/// use muse_lifetime::{run_sharded, FleetCode, FleetConfig, RunnerConfig};
///
/// let code = FleetCode::muse(muse_core::presets::muse_80_69());
/// let env = muse_lifetime::chipkill_heavy();
/// let config = FleetConfig { dimms: 48, years: 1.0, ..FleetConfig::default() };
/// let outcome = run_sharded(&code, &env, &config,
///     &RunnerConfig { shards: 6, ..RunnerConfig::default() }, None).unwrap();
/// // Sharded execution is bit-identical to the plain run.
/// let plain = muse_lifetime::simulate_fleet(&code, &env, &config);
/// assert_eq!(outcome.report().unwrap().tally, plain.tally);
/// ```
pub fn run_sharded(
    code: &FleetCode,
    env: &Environment,
    config: &FleetConfig,
    runner: &RunnerConfig,
    faults: Option<&FaultPlan>,
) -> Result<ShardedOutcome, RunnerError> {
    let hash = config_hash(code, env, config);
    let mut plan = ShardPlan::new(config.dimms, runner.shards);
    let store = match &runner.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open(dir, &runner.checkpoint_prefix)?),
        None => None,
    };

    let mut done: BTreeMap<u32, LifetimeTally> = BTreeMap::new();
    let mut generation = 0u64;
    let mut stats = RunStats::default();

    if let Some(store) = &store {
        if runner.resume {
            if let Some(loaded) = store.load() {
                let ckpt = loaded.checkpoint;
                if ckpt.config_hash != hash {
                    return Err(RunnerError::ConfigHashMismatch {
                        expected: hash,
                        found: ckpt.config_hash,
                    });
                }
                // The stored plan wins: shard boundaries must match the
                // recorded partials (the hash already fenced `dimms`).
                plan = ShardPlan::new(ckpt.dimms, ckpt.shard_count);
                generation = ckpt.generation;
                done.extend(ckpt.done.iter().copied());
                let dimms_done: u64 = done.keys().map(|&s| len_of(&plan, s)).sum();
                stats.resume = Some(ResumeInfo {
                    generation,
                    shards_done: done.len() as u32,
                    total_shards: plan.count(),
                    dimms_done,
                    machine_years_done: dimms_done as f64 * config.years
                        / config.dimms_per_machine as f64,
                    fell_back: loaded.fell_back,
                });
            }
        } else {
            store.clear()?;
        }
    }

    stats.total_shards = plan.count();
    stats.shards_resumed = done.len() as u32;

    let epochs_per_dimm = config.epochs();
    let mut pending_since_save = 0u32;
    let save = |done: &BTreeMap<u32, LifetimeTally>,
                generation: &mut u64,
                stats: &mut RunStats|
     -> Result<(), RunnerError> {
        let Some(store) = &store else {
            return Ok(());
        };
        *generation += 1;
        let dimms_done: u64 = done.keys().map(|&s| len_of(&plan, s)).sum();
        store.save(&Checkpoint {
            config_hash: hash,
            generation: *generation,
            shard_count: plan.count(),
            dimms: plan.dimms(),
            epoch_cursor: dimms_done * epochs_per_dimm,
            done: done.iter().map(|(&s, &t)| (s, t)).collect(),
        })?;
        stats.checkpoint_writes += 1;
        if let Some((target, kind)) = faults.and_then(|f| f.corrupt_generation) {
            if *generation == target {
                store.corrupt(target, kind)?;
            }
        }
        Ok(())
    };

    for shard in 0..plan.count() {
        if done.contains_key(&shard) {
            continue;
        }
        if runner
            .stop_after_shards
            .is_some_and(|stop| stats.shards_run as u64 >= stop)
        {
            if pending_since_save > 0 {
                save(&done, &mut generation, &mut stats)?;
            }
            return Ok(ShardedOutcome::Interrupted { stats });
        }
        let range = plan.range(shard);
        let mut attempt = 0u32;
        let tally = loop {
            if faults.is_some_and(|f| f.kills(shard, attempt)) {
                // Killed mid-flight: half the shard's work happens, then
                // the worker dies and its partial tally is discarded —
                // the retry recomputes the shard from its streams.
                let mid = range.start + (range.end - range.start) / 2;
                let _ = run_fleet_range(code, env, config, range.start..mid);
                stats.retries += 1;
                if attempt >= runner.max_retries {
                    return Err(RunnerError::ShardFailed {
                        shard,
                        attempts: attempt + 1,
                    });
                }
                let backoff = runner
                    .backoff_base_ms
                    .saturating_mul(1u64 << attempt.min(20))
                    .min(runner.backoff_cap_ms);
                if backoff > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff));
                }
                attempt += 1;
                continue;
            }
            let t = run_fleet_range(code, env, config, range.clone());
            if let Some(delay) = faults.map(|f| f.delay_ms(shard)).filter(|&d| d > 0) {
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
            break t;
        };
        done.insert(shard, tally);
        stats.shards_run += 1;
        pending_since_save += 1;
        if pending_since_save >= runner.checkpoint_every.max(1) {
            save(&done, &mut generation, &mut stats)?;
            pending_since_save = 0;
        }
    }

    if pending_since_save > 0 {
        save(&done, &mut generation, &mut stats)?;
    }

    // Merge in ascending shard order (pure field-wise sums — identical to
    // the unsharded run's DIMM-order merge).
    let mut total = LifetimeTally::default();
    for tally in done.values() {
        total.merge(*tally);
    }
    Ok(ShardedOutcome::Complete {
        report: LifetimeReport::new(code, env, config, total),
        stats,
    })
}

fn len_of(plan: &ShardPlan, shard: u32) -> u64 {
    let r = plan.range(shard);
    r.end - r.start
}
