//! Fleet wiring over the unified syndrome-domain classification backends.
//!
//! The per-family classifiers live with their codes — [`MuseClassifier`]
//! in `muse-core` (residue algebra + combined erasure-plus-error solve)
//! and [`RsClassifier`] in `muse-rs` (GF error syndromes + Forney-style
//! combined decoding) — both implementing [`muse_core::Classifier`]. This
//! module folds them into one [`FleetBackend`] enum so the fleet engine
//! classifies every word read through a single interface, and hosts the
//! wide-decoder **oracle tests**: the retired wide pipelines
//! (`MuseCode::decode`, filling enumeration over `MuseCode::remainder`,
//! `RsMemoryCode::decode`, `RsCode::decode_erasures`) survive only here,
//! replaying every classification against a reconstructed wide word.

use muse_core::{Classifier, Entropy, MuseClassifier, MuseContext, Strike, WordRead};
use muse_rs::{RsClassifier, RsContext};

use crate::FleetCode;

/// The per-worker classification backend for one [`FleetCode`]: MUSE or
/// Reed-Solomon, dispatching to the family's syndrome-domain classifier.
pub enum FleetBackend<'a> {
    /// MUSE residue-space classification ([`MuseClassifier`]).
    Muse(MuseClassifier<'a>),
    /// Reed-Solomon error-domain classification ([`RsClassifier`]).
    Rs(RsClassifier<'a>),
}

/// The resolved decode context of a [`FleetBackend`] for one erased set.
pub enum FleetContext {
    /// MUSE context (healthy, or an [`muse_core::ErasureTable`]).
    Muse(MuseContext),
    /// RS context (healthy, or the erased symbol positions).
    Rs(RsContext),
}

impl<'a> FleetBackend<'a> {
    /// Builds the backend for a fleet code.
    pub fn new(code: &'a FleetCode) -> Self {
        match code {
            FleetCode::Muse(mc) => Self::Muse(MuseClassifier::new(
                mc.kernel().expect("fleet MUSE codes carry a kernel"),
            )),
            FleetCode::Rs { code, device_bits } => Self::Rs(RsClassifier::new(code, *device_bits)),
        }
    }
}

impl Classifier for FleetBackend<'_> {
    type Context = FleetContext;

    fn devices(&self) -> usize {
        match self {
            Self::Muse(b) => b.devices(),
            Self::Rs(b) => b.devices(),
        }
    }

    fn device_width(&self, dev: u16) -> u32 {
        match self {
            Self::Muse(b) => b.device_width(dev),
            Self::Rs(b) => b.device_width(dev),
        }
    }

    fn resolve(&self, erased: &[u16]) -> Option<FleetContext> {
        match self {
            Self::Muse(b) => b.resolve(erased).map(FleetContext::Muse),
            Self::Rs(b) => b.resolve(erased).map(FleetContext::Rs),
        }
    }

    fn classify<E: Entropy>(
        &mut self,
        ctx: &FleetContext,
        strikes: &[(u16, Strike)],
        entropy: &mut E,
    ) -> WordRead {
        match (self, ctx) {
            (Self::Muse(b), FleetContext::Muse(c)) => b.classify(c, strikes, entropy),
            (Self::Rs(b), FleetContext::Rs(c)) => b.classify(c, strikes, entropy),
            _ => unreachable!("context resolved for a different backend"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::{presets, Decoded, MuseCode, Word};
    use muse_faultsim::Rng;
    use muse_rs::{RsMemoryCode, RsMemoryDecoded};

    fn preset_codes() -> Vec<MuseCode> {
        let mut codes = presets::table1();
        codes.extend([presets::muse_268_256(), presets::muse_144_128()]);
        codes
    }

    /// Wide combined-decode oracle for degraded MUSE reads: enumerate every
    /// filling of the erased bits; a filling explains the read if the
    /// filled word is divisible by `m` (pure erasure) or wide-decodes to a
    /// confined correction on a *surviving* symbol (combined). Pure
    /// erasure wins when it exists; otherwise the oracle commits only to a
    /// unique combined explanation — exactly the
    /// `ErasureTable::solve_combined` semantics, from the codeword side.
    fn wide_combined_muse(code: &MuseCode, corrupted: &Word, erased: &[usize]) -> Option<Word> {
        let map = code.symbol_map();
        let erased_bits: Vec<u32> = erased
            .iter()
            .flat_map(|&s| map.bits_of(s).iter().copied())
            .collect();
        let mut base = *corrupted;
        for &bit in &erased_bits {
            base.set_bit(bit, false);
        }
        let mut pure: Option<Word> = None;
        let mut pure_count = 0u32;
        let mut combined: Option<Word> = None;
        let mut combined_count = 0u32;
        for filling in 0..1u64 << erased_bits.len() {
            let mut cand = base;
            for (i, &bit) in erased_bits.iter().enumerate() {
                if filling >> i & 1 == 1 {
                    cand.set_bit(bit, true);
                }
            }
            if code.remainder(&cand) == 0 {
                pure_count += 1;
                pure = Some(cand >> code.r_bits());
            } else if let Decoded::Corrected {
                payload, symbol, ..
            } = code.decode(&cand)
            {
                if !erased.contains(&symbol) {
                    combined_count += 1;
                    combined = Some(payload);
                }
            }
        }
        match (pure_count, combined_count) {
            (1, _) => pure,
            (0, 1) => combined,
            _ => None,
        }
    }

    /// Every MUSE classification — healthy and degraded (now with the
    /// combined erasure-plus-error solve) — must match the wide pipeline
    /// on a pinned word.
    #[test]
    fn muse_classification_matches_wide_oracle() {
        for code in preset_codes() {
            let Some(kernel) = code.kernel() else {
                continue;
            };
            let map = code.symbol_map();
            let n_sym = map.num_symbols();
            let mut backend = MuseClassifier::new(kernel);
            let mut rng = Rng::seeded(0x11FE ^ code.multiplier());
            for trial in 0..300u32 {
                let mut limbs = [0u64; 5];
                for limb in &mut limbs {
                    *limb = rng.next_u64();
                }
                let payload = Word::from_limbs(limbs) & Word::mask(code.k_bits());
                let cw = code.encode(&payload);
                let contents = kernel.contents_of_word(map, &cw);
                let x = (cw & Word::mask(code.r_bits())).to_u64().expect("r ≤ 32");
                backend.pin(&contents, x);

                // 0..=2 erased devices, 0..=2 strikes on survivors.
                let n_erased = (trial % 3) as usize;
                let mut erased: Vec<usize> = Vec::new();
                while erased.len() < n_erased {
                    let s = (rng.below(n_sym as u64)) as usize;
                    if !erased.contains(&s) {
                        erased.push(s);
                    }
                }
                erased.sort_unstable();
                let mut strikes: Vec<(u16, Strike)> = Vec::new();
                for _ in 0..(trial / 3) % 3 {
                    let s = rng.below(n_sym as u64) as usize;
                    if erased.contains(&s) || strikes.iter().any(|&(d, _)| d as usize == s) {
                        continue;
                    }
                    let width = kernel.symbol_bits(s);
                    let strike = if trial % 2 == 0 {
                        Strike::Xor(rng.nonzero_below(1 << width) as u16)
                    } else {
                        Strike::AsymBit(rng.below(width as u64) as u8)
                    };
                    strikes.push((s as u16, strike));
                }
                if erased.is_empty() && strikes.is_empty() {
                    continue;
                }

                // Build the degraded context directly from the erasure
                // table (the fleet's `resolve` additionally rejects
                // non-injective sets as data loss; the oracle covers their
                // classification semantics too).
                let ctx = if erased.is_empty() {
                    MuseContext::Healthy
                } else {
                    MuseContext::Degraded(kernel.erasure_table(&erased))
                };
                let fast = backend.classify(&ctx, &strikes, &mut rng);

                // Wide replay: resolve each strike against the pinned
                // contents exactly as the classifier does.
                let mut corrupted = cw;
                for &(dev, s) in &strikes {
                    let pattern = match s {
                        Strike::Xor(p) => p,
                        Strike::AsymBit(bit) => (1 << bit) & contents[dev as usize],
                    };
                    map.apply_xor_pattern(&mut corrupted, dev as usize, pattern as u64);
                }
                let wide = if erased.is_empty() {
                    match code.decode(&corrupted) {
                        Decoded::Detected => WordRead::Due,
                        d => {
                            if d.payload() == Some(payload) {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                } else {
                    match wide_combined_muse(&code, &corrupted, &erased) {
                        None => WordRead::Due,
                        Some(p) if p == payload => WordRead::Correct,
                        Some(_) => WordRead::Sdc,
                    }
                };
                assert_eq!(
                    fast,
                    wide,
                    "{} trial {trial}: erased {erased:?} strikes {strikes:?}",
                    code.name()
                );
            }
        }
    }

    /// The combined MUSE solve strictly extends the plain erasure solve:
    /// it never downgrades a read the old erasure-only decoder recovered,
    /// and it recovers some reads the old decoder flagged DUE.
    #[test]
    fn muse_combined_extends_plain_erasure_decoding() {
        let code = presets::muse_80_69();
        let kernel = code.kernel().expect("preset");
        let mut backend = MuseClassifier::new(kernel);
        let ctx = backend.resolve(&[7]).expect("capacity");
        let mut rng = Rng::seeded(0xE57);
        let mut recovered_beyond_plain = 0u32;
        for trial in 0..400u32 {
            let dev = ((8 + trial) % 20) as u16;
            if dev == 7 {
                continue;
            }
            let pattern = 1 + (trial % 15) as u16;
            let fast = backend.classify(&ctx, &[(dev, Strike::Xor(pattern))], &mut rng);
            assert_ne!(fast, WordRead::Sdc, "in-model transients never go silent");
            // The plain solve can never explain a survivor error (the
            // target residue has no filling — the old path's DUE), so
            // every Correct here is the combined mode's contribution.
            if fast == WordRead::Correct {
                recovered_beyond_plain += 1;
            }
        }
        assert!(
            recovered_beyond_plain > 0,
            "combined mode recovers reads plain erasure decoding flagged"
        );
    }

    /// Brute-force combined-decode oracle for degraded RS reads, built on
    /// the codeword-domain erasure decoder: erasure-only explanation
    /// first, then every single-error position within the remaining
    /// capacity, committing only to a unique consistent explanation.
    fn wide_combined_rs(
        code: &RsMemoryCode,
        corrupted: &Word,
        erased: &[usize],
    ) -> Option<Vec<u16>> {
        let rs = code.inner();
        let symbols = code.to_symbols(corrupted);
        if let Some(data) = rs.decode_erasures(&symbols, erased) {
            return Some(data);
        }
        let e_max = (2 * rs.t() - erased.len()) / 2;
        if e_max == 0 {
            return None;
        }
        let synd = rs.syndromes(&symbols);
        let mut found: Option<Vec<u16>> = None;
        for q in 0..rs.n_symbols() {
            if erased.contains(&q) {
                continue;
            }
            let mut positions = erased.to_vec();
            positions.push(q);
            let Some(mags) = rs.erasure_magnitudes(&synd, &positions) else {
                continue;
            };
            if *mags.last().expect("nonempty") == 0 {
                continue;
            }
            if found.is_some() {
                return None; // ambiguous explanation
            }
            let mut fixed = symbols.clone();
            for (&p, &m) in positions.iter().zip(&mags) {
                fixed[p] ^= m;
            }
            found = Some(fixed[2 * rs.t()..].to_vec());
        }
        found
    }

    /// Every RS classification must match the wide pipeline: encode a
    /// random payload, apply the same folded errors, decode (healthy) or
    /// combined-decode (degraded) wide, compare outcome classes.
    #[test]
    fn rs_classification_matches_wide_oracle() {
        for (t, device_bits) in [(1usize, 4u32), (1, 8), (2, 4), (2, 8)] {
            let code = RsMemoryCode::new(8, 144, t).expect("geometry");
            let mut backend = RsClassifier::new(&code, device_bits);
            let mut rng = Rng::seeded(0x2512 + t as u64 * 100 + device_bits as u64);
            for trial in 0..400u32 {
                let payload = {
                    let mut w = Word::ZERO;
                    for i in 0..3 {
                        w = w | (Word::from(rng.next_u64()) << (64 * i));
                    }
                    w & Word::mask(code.data_bits())
                };
                let cw = code.encode(&payload);

                let n_erased = (trial % (2 * t as u32 + 1)) as usize;
                let mut erased: Vec<usize> = Vec::new();
                while erased.len() < n_erased {
                    let p = rng.below(code.n_symbols() as u64) as usize;
                    if !erased.contains(&p) {
                        erased.push(p);
                    }
                }
                erased.sort_unstable();

                let mut strikes: Vec<(u16, Strike)> = Vec::new();
                for _ in 0..(trial / 5) % 4 {
                    let dev = rng.below(backend.devices() as u64) as u16;
                    if strikes.iter().any(|&(d, _)| d == dev) {
                        continue;
                    }
                    strikes.push((dev, Strike::Xor(rng.nonzero_below(1 << device_bits) as u16)));
                }
                if erased.is_empty() && strikes.is_empty() {
                    continue;
                }

                // Resolve via erased *devices* covering exactly the erased
                // symbols.
                let devices_per_symbol = (code.symbol_bits() / device_bits) as u16;
                let erased_devs: Vec<u16> = erased
                    .iter()
                    .map(|&s| s as u16 * devices_per_symbol)
                    .collect();
                let ctx = backend.resolve(&erased_devs).expect("within capacity");
                let fast = backend.classify(&ctx, &strikes, &mut rng);

                let mut corrupted = cw;
                for &(dev, s) in &strikes {
                    let Strike::Xor(p) = s else { unreachable!() };
                    corrupted = corrupted ^ (Word::from(p as u64) << (dev as u32 * device_bits));
                }
                let wide = if erased.is_empty() {
                    match code.decode(&corrupted) {
                        RsMemoryDecoded::Detected => WordRead::Due,
                        d => {
                            if d.payload() == Some(payload) {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                } else {
                    match wide_combined_rs(&code, &corrupted, &erased) {
                        None => WordRead::Due,
                        Some(data) => {
                            // Reassemble the payload from the data symbols.
                            let mut p = Word::ZERO;
                            for (i, &s) in data.iter().enumerate() {
                                p = p | (Word::from(s as u64) << (i as u32 * 8));
                            }
                            if p == payload {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                };
                assert_eq!(
                    fast, wide,
                    "t={t} db={device_bits} trial {trial}: erased {erased:?} strikes {strikes:?}"
                );
            }
        }
    }

    #[test]
    fn rs_strikes_inside_erased_symbols_are_absorbed() {
        // A transient hitting the live device of an erased symbol is
        // reconstructed along with the dead half: fully corrected.
        let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
        let mut backend = RsClassifier::new(&code, 4);
        let mut rng = Rng::seeded(77);
        // Devices 8 and 9 share symbol 4; erase it, strike device 9.
        let ctx = backend.resolve(&[8]).expect("capacity");
        let out = backend.classify(&ctx, &[(9, Strike::Xor(0xF))], &mut rng);
        assert_eq!(out, WordRead::Correct);
    }

    #[test]
    fn rs_full_erasure_budget_turns_extra_errors_silent() {
        // k = 2t erased symbols leave no residual syndromes: an extra
        // error outside the erased set cannot be detected.
        let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
        let mut backend = RsClassifier::new(&code, 8);
        let mut rng = Rng::seeded(78);
        // Symbols 3 and 7 erased (devices == symbols at x8), strike 12.
        let ctx = backend.resolve(&[3, 7]).expect("capacity");
        let out = backend.classify(&ctx, &[(12, Strike::Xor(0x5A))], &mut rng);
        assert_eq!(out, WordRead::Sdc);
    }

    #[test]
    fn rs_t2_combined_corrects_transient_under_erasures() {
        // The behaviour the lifetime simulator's degraded t = 2 rows now
        // exercise: ν ≤ 2 erased symbols plus one unknown transient is
        // within the combined budget (2e + ν ≤ 4) and reads back correct —
        // the old erasure-only path flagged these DUE.
        let code = RsMemoryCode::new(8, 144, 2).expect("geometry");
        let mut backend = RsClassifier::new(&code, 4);
        let mut rng = Rng::seeded(0x7E57);
        for erased_devs in [vec![4u16], vec![4, 12]] {
            let ctx = backend.resolve(&erased_devs).expect("capacity");
            for trial in 0..100u32 {
                let dev = (20 + trial % 10) as u16;
                let pattern = 1 + (trial % 15) as u16;
                let out = backend.classify(&ctx, &[(dev, Strike::Xor(pattern))], &mut rng);
                assert_eq!(
                    out,
                    WordRead::Correct,
                    "erased {erased_devs:?} trial {trial}"
                );
            }
        }
    }
}
