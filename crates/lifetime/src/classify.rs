//! Content-space word-read classification for healthy and degraded
//! (erasure-mode) operation.
//!
//! A word read is classified from (a) the set of known-failed devices the
//! controller decodes around (the *erased* set) and (b) the transient /
//! permanent disturbances striking the word ([`Strike`]s). No codeword is
//! materialized:
//!
//! * **MUSE** reads run on the [`SyndromeKernel`] residue algebra — symbol
//!   contents are sampled lazily (uniform payload bits, check bits from a
//!   lazily drawn check value, exactly the `muse-faultsim` content-space
//!   discipline), the survivors' syndrome contribution accumulates through
//!   [`SyndromeKernel::residue`]/[`SyndromeKernel::flip_delta`], and
//!   degraded reads finish with one [`ErasureTable::solve`] lookup.
//! * **Reed-Solomon** reads run in the error-value domain —
//!   [`RsMemoryCode::error_syndromes`] over the folded device strikes, then
//!   [`RsCode::locate_errors`](muse_rs::RsCode::locate_errors) (healthy) or
//!   [`RsCode::erasure_magnitudes`](muse_rs::RsCode::erasure_magnitudes)
//!   (degraded). Dead-chip contents never enter the outcome: the erasure
//!   solve compensates any value they take, so the simulator does not
//!   sample them.
//!
//! The wide decoders (`MuseCode::decode`/`recover_erasures`,
//! `RsMemoryCode::decode`, `RsCode::decode_erasures`) are the
//! property-tested oracles — see the `#[cfg(test)]` suite at the bottom,
//! which replays every classification against a reconstructed wide word.

use muse_core::{ErasureSolve, ErasureTable, FastDecode, SyndromeKernel};
use muse_faultsim::{Bounded32, Rng};
use muse_rs::RsMemoryCode;

/// Outcome of reading one word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordRead {
    /// The data read back correct (possibly after correction / erasure
    /// recovery).
    Correct,
    /// Detected-but-uncorrectable: a DUE the machine must handle.
    Due,
    /// The word read back wrong without a flag — silent data corruption.
    Sdc,
}

/// One device-level disturbance of a word read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strike {
    /// XOR this pattern onto the device's bits (transient upset patterns,
    /// permanent-fault garbage).
    Xor(u16),
    /// Asymmetric (retention-style) discharge of one bit: the cell flips
    /// only if it currently stores a 1 (Section III-C's `1→0` model).
    AsymBit(u8),
}

/// Lazily sampled per-symbol contents of one MUSE word, in the
/// `muse-faultsim` content-space discipline: payload bits uniform, check
/// bits from a check value drawn uniformly over `[0, m)` on first use.
pub struct MuseContents {
    contents: Vec<u16>,
    stamps: Vec<u64>,
    generation: u64,
    x: Option<u64>,
    x_pick: Bounded32,
    pinned: bool,
}

impl MuseContents {
    /// Fresh sampler for a kernel's symbol geometry.
    pub fn new(kernel: &SyndromeKernel) -> Self {
        Self {
            contents: vec![0; kernel.num_symbols()],
            stamps: vec![u64::MAX; kernel.num_symbols()],
            generation: 0,
            x: None,
            x_pick: Bounded32::new(u32::try_from(kernel.modulus()).expect("kernel moduli fit u32")),
            pinned: false,
        }
    }

    /// Starts a fresh word read: every symbol content (and the check value)
    /// is resampled on next observation. No-op while pinned.
    #[inline]
    pub fn begin(&mut self) {
        if !self.pinned {
            self.generation = self.generation.wrapping_add(1);
            self.x = None;
        }
    }

    /// Test hook: pins every symbol content (and the check value) to those
    /// of a real codeword, so a classification replays a wide-word read
    /// exactly.
    #[cfg(test)]
    pub fn pin(&mut self, contents: &[u16], x: u64) {
        self.generation = self.generation.wrapping_add(1);
        self.contents.copy_from_slice(contents);
        for stamp in &mut self.stamps {
            *stamp = self.generation;
        }
        self.x = Some(x);
        self.pinned = true;
    }

    /// The stored content of `sym`, sampled on first observation per read.
    #[inline]
    fn content(&mut self, kernel: &SyndromeKernel, rng: &mut Rng, sym: usize) -> u16 {
        if self.stamps[sym] != self.generation {
            let raw = rng.next_u64() as u16;
            let content = if kernel.needs_check_value(sym) {
                let x = match self.x {
                    Some(x) => x,
                    None => {
                        let x = self.x_pick.sample(rng) as u64;
                        self.x = Some(x);
                        x
                    }
                };
                kernel.apply_check_bits(sym, raw & kernel.payload_mask(sym), x)
            } else {
                raw & kernel.width_mask(sym)
            };
            self.contents[sym] = content;
            self.stamps[sym] = self.generation;
        }
        self.contents[sym]
    }

    /// Resolves a strike to its XOR pattern on `sym`'s current content.
    #[inline]
    fn resolve(&mut self, kernel: &SyndromeKernel, rng: &mut Rng, sym: usize, s: Strike) -> u16 {
        match s {
            Strike::Xor(p) => p,
            Strike::AsymBit(bit) => (1 << bit) & self.content(kernel, rng, sym),
        }
    }
}

/// Classifies one MUSE word read.
///
/// `erased` is the controller's known-failed device set (empty = healthy
/// decode; non-empty = degraded decode through `table`, which must be the
/// [`ErasureTable`] built for exactly that set). Strikes must name
/// non-erased symbols — a dead chip's output never reaches the decoder.
pub fn classify_muse(
    kernel: &SyndromeKernel,
    table: Option<&ErasureTable>,
    strikes: &[(u16, Strike)],
    contents: &mut MuseContents,
    rng: &mut Rng,
) -> WordRead {
    assert!(strikes.len() <= 16, "at most 16 strikes per word read");
    contents.begin();
    let m = kernel.modulus();
    match table {
        None => {
            // Healthy decode: accumulate the strikes' syndrome and run the
            // fused classify/correct stages.
            let mut rem = 0u64;
            let mut payload_touched = false;
            let mut resolved = [(0usize, 0u16); 16];
            let mut n = 0usize;
            for &(dev, s) in strikes {
                let sym = dev as usize;
                let pattern = contents.resolve(kernel, rng, sym, s);
                if pattern == 0 {
                    continue;
                }
                let content = contents.content(kernel, rng, sym);
                rem = kernel.add_mod(rem, kernel.flip_delta(sym, content, pattern));
                payload_touched |= pattern & kernel.payload_mask(sym) != 0;
                resolved[n] = (sym, pattern);
                n += 1;
            }
            let resolved = &resolved[..n];
            if rem == 0 {
                return if payload_touched {
                    WordRead::Sdc
                } else {
                    WordRead::Correct
                };
            }
            match kernel.classify(rem) {
                FastDecode::Clean => unreachable!("nonzero remainder"),
                FastDecode::Detected => WordRead::Due,
                FastDecode::Correct { symbol } => {
                    let original = contents.content(kernel, rng, symbol);
                    let injected = resolved
                        .iter()
                        .find(|&&(s, _)| s == symbol)
                        .map_or(0, |&(_, p)| p);
                    match kernel.correct(rem, original ^ injected) {
                        None => WordRead::Due,
                        Some(corrected) => {
                            let restored = (corrected ^ original) & kernel.payload_mask(symbol)
                                == 0
                                && resolved
                                    .iter()
                                    .all(|&(s, p)| s == symbol || p & kernel.payload_mask(s) == 0);
                            if restored {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                }
            }
        }
        Some(table) => {
            // Degraded decode: the survivors' syndrome contribution, then
            // one erasure-table lookup. The intact word has syndrome 0, so
            // Σ_{s∉E} R_s(orig) = −Σ_{s∈E} R_s(orig); strikes on survivors
            // then move it by flip_delta.
            let mut rem_rest = 0u64;
            for &s in table.symbols() {
                let r = kernel.residue(s, contents.content(kernel, rng, s));
                rem_rest = kernel.add_mod(rem_rest, if r == 0 { 0 } else { m - r });
            }
            let mut payload_touched = false;
            for &(dev, s) in strikes {
                let sym = dev as usize;
                debug_assert!(
                    !table.symbols().contains(&sym),
                    "strikes on erased devices never reach the decoder"
                );
                let pattern = contents.resolve(kernel, rng, sym, s);
                if pattern == 0 {
                    continue;
                }
                let content = contents.content(kernel, rng, sym);
                rem_rest = kernel.add_mod(rem_rest, kernel.flip_delta(sym, content, pattern));
                payload_touched |= pattern & kernel.payload_mask(sym) != 0;
            }
            let target = if rem_rest == 0 { 0 } else { m - rem_rest };
            match table.solve(target) {
                ErasureSolve::None | ErasureSolve::Ambiguous => WordRead::Due,
                ErasureSolve::Unique(filling) => {
                    let mut wrong = payload_touched;
                    for (i, &s) in table.symbols().iter().enumerate() {
                        let original = contents.content(kernel, rng, s);
                        wrong |=
                            (table.content_of(filling, i) ^ original) & kernel.payload_mask(s) != 0;
                    }
                    if wrong {
                        WordRead::Sdc
                    } else {
                        WordRead::Correct
                    }
                }
            }
        }
    }
}

/// Error-domain classification context for a Reed-Solomon fleet code.
///
/// Fleet geometries are restricted to the clean case: whole symbols per
/// channel (no shortened top) and devices nested inside symbols, which the
/// constructor asserts.
pub struct RsClassifier {
    device_bits: u32,
    devices_per_symbol: u32,
    /// `2t` — parity symbols / syndrome count.
    parity: usize,
    n_symbols: usize,
}

impl RsClassifier {
    /// Builds the context, validating the geometry.
    pub fn new(code: &RsMemoryCode, device_bits: u32) -> Self {
        assert_eq!(
            code.top_symbol_bits(),
            code.symbol_bits(),
            "fleet RS codes use whole symbols (no shortened top)"
        );
        assert_eq!(
            code.symbol_bits() % device_bits,
            0,
            "devices must nest inside RS symbols"
        );
        Self {
            device_bits,
            devices_per_symbol: code.symbol_bits() / device_bits,
            parity: 2 * code.inner().t(),
            n_symbols: code.n_symbols(),
        }
    }

    /// Number of physical devices on the channel.
    pub fn devices(&self) -> usize {
        self.n_symbols * self.devices_per_symbol as usize
    }

    /// The RS symbol a device's bits live in.
    #[inline]
    pub fn symbol_of_device(&self, dev: u16) -> usize {
        (dev as u32 / self.devices_per_symbol) as usize
    }

    /// Classifies one RS word read against the erased symbol positions
    /// (`erased`, sorted, `≤ 2t`) and the strikes. Strikes on erased
    /// symbols are permitted — the erasure solve absorbs them (the whole
    /// symbol is reconstructed) — and dead-chip garbage is *not* passed:
    /// the solve compensates any value a dead chip emits, so its content
    /// cannot affect the outcome.
    pub fn classify(
        &self,
        code: &RsMemoryCode,
        erased: &[usize],
        strikes: &[(u16, Strike)],
        rng: &mut Rng,
    ) -> WordRead {
        debug_assert!(erased.len() <= self.parity);
        // Fold device strikes into per-symbol error values.
        let mut errors = [(0usize, 0u16); 16];
        let mut n = 0usize;
        for &(dev, s) in strikes {
            let value = match s {
                Strike::Xor(p) => p,
                // Asymmetric discharge: the struck cell stores 1 with
                // probability 1/2 under uniform contents.
                Strike::AsymBit(bit) => {
                    if rng.chance(0.5) {
                        1 << bit
                    } else {
                        0
                    }
                }
            };
            if value == 0 {
                continue;
            }
            let sym = self.symbol_of_device(dev);
            let shifted = value << ((dev as u32 % self.devices_per_symbol) * self.device_bits);
            match errors[..n].iter_mut().find(|e| e.0 == sym) {
                Some(e) => e.1 ^= shifted,
                None => {
                    errors[n] = (sym, shifted);
                    n += 1;
                }
            }
        }
        let errors = &errors[..n];
        let data_start = self.parity;

        if erased.is_empty() {
            if errors.iter().all(|&(_, v)| v == 0) {
                return WordRead::Correct;
            }
            let synd = code.error_syndromes(errors);
            let synd = &synd[..self.parity];
            if synd.iter().all(|&s| s == 0) {
                // Aliased to a valid codeword: silent iff data symbols moved.
                return if errors.iter().any(|&(p, v)| p >= data_start && v != 0) {
                    WordRead::Sdc
                } else {
                    WordRead::Correct
                };
            }
            match code.inner().locate_errors(synd) {
                None => WordRead::Due,
                Some(located) => {
                    // Residual after correction: injected ⊕ located, per
                    // position; data reads right iff it vanishes on every
                    // data symbol.
                    let residual_clean = |pos: usize| {
                        let injected = errors
                            .iter()
                            .find(|&&(p, _)| p == pos)
                            .map_or(0, |&(_, v)| v);
                        let corrected = located
                            .iter()
                            .find(|&&(p, _)| p == pos)
                            .map_or(0, |&(_, v)| v);
                        injected ^ corrected == 0
                    };
                    let touched = errors
                        .iter()
                        .map(|&(p, _)| p)
                        .chain(located.iter().map(|&(p, _)| p));
                    if touched.filter(|&p| p >= data_start).all(residual_clean) {
                        WordRead::Correct
                    } else {
                        WordRead::Sdc
                    }
                }
            }
        } else {
            let synd = code.error_syndromes(errors);
            match code
                .inner()
                .erasure_magnitudes(&synd[..self.parity], erased)
            {
                None => WordRead::Due,
                Some(mags) => {
                    // Residual: injected errors minus the applied erasure
                    // corrections.
                    let clean = |pos: usize| {
                        let injected = errors
                            .iter()
                            .find(|&&(p, _)| p == pos)
                            .map_or(0, |&(_, v)| v);
                        let corrected =
                            erased.iter().position(|&p| p == pos).map_or(0, |i| mags[i]);
                        injected ^ corrected == 0
                    };
                    let touched = errors.iter().map(|&(p, _)| p).chain(erased.iter().copied());
                    if touched.filter(|&p| p >= data_start).all(clean) {
                        WordRead::Correct
                    } else {
                        WordRead::Sdc
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muse_core::{presets, MuseCode, Word};
    use muse_rs::RsMemoryDecoded;

    fn preset_codes() -> Vec<MuseCode> {
        let mut codes = presets::table1();
        codes.extend([presets::muse_268_256(), presets::muse_144_128()]);
        codes
    }

    /// Every MUSE classification — healthy and degraded — must match the
    /// wide pipeline on a pinned word: encode, strike, decode (or
    /// erasure-recover) wide, compare outcome classes.
    #[test]
    fn muse_classification_matches_wide_oracle() {
        for code in preset_codes() {
            let Some(kernel) = code.kernel() else {
                continue;
            };
            let map = code.symbol_map();
            let n_sym = map.num_symbols();
            let mut contents_ctx = MuseContents::new(kernel);
            let mut rng = Rng::seeded(0x11FE ^ code.multiplier());
            for trial in 0..300u32 {
                let mut limbs = [0u64; 5];
                for limb in &mut limbs {
                    *limb = rng.next_u64();
                }
                let payload = Word::from_limbs(limbs) & Word::mask(code.k_bits());
                let cw = code.encode(&payload);
                let contents = kernel.contents_of_word(map, &cw);
                let x = (cw & Word::mask(code.r_bits())).to_u64().expect("r ≤ 32");
                contents_ctx.pin(&contents, x);

                // 0..=2 erased devices, 0..=2 strikes on survivors.
                let n_erased = (trial % 3) as usize;
                let mut erased: Vec<usize> = Vec::new();
                while erased.len() < n_erased {
                    let s = (rng.below(n_sym as u64)) as usize;
                    if !erased.contains(&s) {
                        erased.push(s);
                    }
                }
                erased.sort_unstable();
                let mut strikes: Vec<(u16, Strike)> = Vec::new();
                for _ in 0..(trial / 3) % 3 {
                    let s = rng.below(n_sym as u64) as usize;
                    if erased.contains(&s) || strikes.iter().any(|&(d, _)| d as usize == s) {
                        continue;
                    }
                    let width = kernel.symbol_bits(s);
                    let strike = if trial % 2 == 0 {
                        Strike::Xor(rng.nonzero_below(1 << width) as u16)
                    } else {
                        Strike::AsymBit(rng.below(width as u64) as u8)
                    };
                    strikes.push((s as u16, strike));
                }
                if erased.is_empty() && strikes.is_empty() {
                    continue;
                }

                let table = (!erased.is_empty()).then(|| kernel.erasure_table(&erased));
                let fast = classify_muse(
                    kernel,
                    table.as_ref(),
                    &strikes,
                    &mut contents_ctx,
                    &mut rng,
                );

                // Wide replay: resolve each strike against the pinned
                // contents exactly as the classifier does.
                let mut corrupted = cw;
                for &(dev, s) in &strikes {
                    let pattern = match s {
                        Strike::Xor(p) => p,
                        Strike::AsymBit(bit) => (1 << bit) & contents[dev as usize],
                    };
                    map.apply_xor_pattern(&mut corrupted, dev as usize, pattern as u64);
                }
                let wide = if erased.is_empty() {
                    match code.decode(&corrupted) {
                        muse_core::Decoded::Detected => WordRead::Due,
                        d => {
                            if d.payload() == Some(payload) {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                } else {
                    match code.recover_erasures(&corrupted, &erased) {
                        None => WordRead::Due,
                        Some(p) if p == payload => WordRead::Correct,
                        Some(_) => WordRead::Sdc,
                    }
                };
                assert_eq!(
                    fast,
                    wide,
                    "{} trial {trial}: erased {erased:?} strikes {strikes:?}",
                    code.name()
                );
            }
        }
    }

    /// Every RS classification must match the wide pipeline: encode a
    /// random payload, apply the same folded errors, decode (healthy) or
    /// erasure-decode (degraded) wide, compare outcome classes.
    #[test]
    fn rs_classification_matches_wide_oracle() {
        for (t, device_bits) in [(1usize, 4u32), (1, 8), (2, 4), (2, 8)] {
            let code = RsMemoryCode::new(8, 144, t).expect("geometry");
            let ctx = RsClassifier::new(&code, device_bits);
            let mut rng = Rng::seeded(0x2512 + t as u64 * 100 + device_bits as u64);
            for trial in 0..400u32 {
                let payload = {
                    let mut w = Word::ZERO;
                    for i in 0..3 {
                        w = w | (Word::from(rng.next_u64()) << (64 * i));
                    }
                    w & Word::mask(code.data_bits())
                };
                let cw = code.encode(&payload);

                let n_erased = (trial % (2 * t as u32 + 1)) as usize;
                let mut erased: Vec<usize> = Vec::new();
                while erased.len() < n_erased {
                    let p = rng.below(code.n_symbols() as u64) as usize;
                    if !erased.contains(&p) {
                        erased.push(p);
                    }
                }
                erased.sort_unstable();

                let mut strikes: Vec<(u16, Strike)> = Vec::new();
                for _ in 0..(trial / 5) % 4 {
                    let dev = rng.below(ctx.devices() as u64) as u16;
                    if strikes.iter().any(|&(d, _)| d == dev) {
                        continue;
                    }
                    strikes.push((dev, Strike::Xor(rng.nonzero_below(1 << device_bits) as u16)));
                }
                if erased.is_empty() && strikes.is_empty() {
                    continue;
                }

                let fast = ctx.classify(&code, &erased, &strikes, &mut rng);

                let mut corrupted = cw;
                for &(dev, s) in &strikes {
                    let Strike::Xor(p) = s else { unreachable!() };
                    corrupted = corrupted ^ (Word::from(p as u64) << (dev as u32 * device_bits));
                }
                let wide = if erased.is_empty() {
                    match code.decode(&corrupted) {
                        RsMemoryDecoded::Detected => WordRead::Due,
                        d => {
                            if d.payload() == Some(payload) {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                } else {
                    let symbols = code.to_symbols(&corrupted);
                    match code.inner().decode_erasures(&symbols, &erased) {
                        None => WordRead::Due,
                        Some(data) => {
                            // Reassemble the payload from the data symbols.
                            let mut p = Word::ZERO;
                            for (i, &s) in data.iter().enumerate() {
                                p = p | (Word::from(s as u64) << (i as u32 * 8));
                            }
                            if p == payload {
                                WordRead::Correct
                            } else {
                                WordRead::Sdc
                            }
                        }
                    }
                };
                assert_eq!(
                    fast, wide,
                    "t={t} db={device_bits} trial {trial}: erased {erased:?} strikes {strikes:?}"
                );
            }
        }
    }

    #[test]
    fn rs_strikes_inside_erased_symbols_are_absorbed() {
        // A transient hitting the live device of an erased symbol is
        // reconstructed along with the dead half: fully corrected.
        let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
        let ctx = RsClassifier::new(&code, 4);
        let mut rng = Rng::seeded(77);
        // Devices 8 and 9 share symbol 4; erase it, strike device 9.
        let out = ctx.classify(&code, &[4], &[(9, Strike::Xor(0xF))], &mut rng);
        assert_eq!(out, WordRead::Correct);
    }

    #[test]
    fn rs_full_erasure_budget_turns_extra_errors_silent() {
        // k = 2t erased symbols leave no residual syndromes: an extra
        // error outside the erased set cannot be detected.
        let code = RsMemoryCode::new(8, 144, 1).expect("geometry");
        let ctx = RsClassifier::new(&code, 8);
        let mut rng = Rng::seeded(78);
        // Symbols 3 and 7 erased (devices == symbols at x8), strike 12.
        let out = ctx.classify(&code, &[3, 7], &[(12, Strike::Xor(0x5A))], &mut rng);
        assert_eq!(out, WordRead::Sdc);
    }
}
