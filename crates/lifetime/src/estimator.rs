//! Rare-event estimation: importance sampling with exact
//! likelihood-ratio reweighting.
//!
//! At realistic fault rates the silent-corruption floor of a ChipKill
//! code sits at `1e-5`/machine-year and below; a naive Monte-Carlo fleet
//! run covering a few hundred machine-years observes **zero** SDC events
//! and reports an uninformative `0.000000`. This module supplies the two
//! halves of the fix:
//!
//! 1. **A biased sampler** ([`BiasedCount`], [`boosted_chance`]) that
//!    inflates the *rare* ingredients of an SDC — permanent-fault
//!    arrivals and multi-fault coincidences — while tracking the exact
//!    likelihood ratio of every biased decision, so each observed event
//!    carries the weight that maps it back to the nominal measure.
//! 2. **Weighted accumulators and interval estimates**
//!    ([`WeightedCount`], [`RateEstimate`]) that turn the reweighted
//!    tallies into variance-carrying rates with 95% confidence
//!    intervals, including the rule-of-three upper bound when zero
//!    events were observed.
//!
//! # Design constraints
//!
//! * **Bias 1.0 is the naive run, bit for bit.** The biased sampler
//!   reuses every nominal draw verbatim (same stream, same order) and
//!   layers its *extra* draws on the domain-separated
//!   [`Rng::for_bias`] stream, consumed only when the inflation is
//!   active. All likelihood factors are exactly `1.0` at bias 1.0.
//! * **Bit-identical at any thread count and shard partition.**
//!   Per-DIMM weighted totals are accumulated in `f64` along the DIMM's
//!   (sequential, deterministic) epoch walk, then quantized once into
//!   saturating fixed-point integers ([`WeightedCount`]). Integer
//!   addition is associative, so merging shards in any grouping yields
//!   the same sums — float summation order never varies across
//!   partitions.
//! * **Unbiased weights.** For each arrival mode the biased count is
//!   `X + Y` with `X` the nominal binomial (main stream) and `Y` an
//!   extra binomial on the bias stream; the likelihood table is the
//!   exact ratio `pmf_nominal / (pmf_nominal ⊛ pmf_extra)`, so
//!   `E[weight] = 1` under the biased measure (property-tested in
//!   `tests/estimator_proptest.rs`; the `CountCdf` samplers quantize
//!   probabilities at `2⁻⁶⁴`, far below any statistical tolerance).

use muse_faultsim::{CountCdf, Rng};

/// Largest probability the *extra*-arrival inflation may add per device
/// per epoch (keeps the likelihood ratios, and thus the weight variance,
/// bounded however large the bias factor). Public so the supervisor's
/// telemetry can flag the saturated channels — when
/// `(bias − 1) · p > EXTRA_P_CAP` the effective inflation is lower than
/// requested.
pub const EXTRA_P_CAP: f64 = 0.5;

/// Largest probability a boosted coincidence may be forced to
/// (a forced-certain event would make the miss branch unreachable and
/// its likelihood ratio degenerate).
const BOOST_CAP: f64 = 0.5;

/// 97.5% standard-normal quantile: the half-width multiplier of every
/// 95% confidence interval quoted by the estimators.
const Z_95: f64 = 1.959_964;

/// Which estimator a fleet run uses for its DUE/SDC rates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Estimator {
    /// Naive Monte Carlo: raw event counts over the covered exposure,
    /// with exact Poisson confidence intervals.
    #[default]
    Naive,
    /// Importance sampling: permanent-fault arrivals and multi-fault
    /// coincidences are inflated by `bias`, every event is reweighted by
    /// its exact likelihood ratio, and the confidence interval comes from
    /// the per-DIMM weighted-total variance.
    Importance {
        /// Rate-inflation factor (`>= 1`; `1.0` reproduces the naive run
        /// bit-identically).
        bias: f64,
    },
}

impl Estimator {
    /// The importance-sampling estimator at `bias`.
    ///
    /// # Panics
    ///
    /// Panics unless `bias` is finite and `>= 1`.
    pub fn importance(bias: f64) -> Self {
        assert!(
            bias.is_finite() && bias >= 1.0,
            "bias factor {bias} must be finite and >= 1"
        );
        Self::Importance { bias }
    }

    /// The rate-inflation factor (1.0 for the naive estimator).
    pub fn bias(&self) -> f64 {
        match self {
            Self::Naive => 1.0,
            Self::Importance { bias } => *bias,
        }
    }

    /// Short display/schema name: `naive` or `is`.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::Importance { .. } => "is",
        }
    }

    /// Canonical encoding for
    /// [`config_hash`](crate::config_hash): a variant tag plus the bias
    /// factor's IEEE-754 bit pattern.
    /// [`FleetConfig::canonical_bytes`](crate::FleetConfig::canonical_bytes)
    /// appends this **only for non-naive estimators**, so every hash
    /// computed before the estimator existed — and every
    /// `lifetime-ckpt/v1` checkpoint carrying one — stays valid.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        match self {
            Self::Naive => Vec::new(),
            Self::Importance { bias } => {
                let mut out = vec![1u8];
                out.extend_from_slice(&bias.to_bits().to_le_bytes());
                out
            }
        }
    }
}

/// Deterministic accumulator of per-DIMM weighted totals: the sum and the
/// sum of squares, in saturating fixed point.
///
/// Each DIMM's trajectory produces one `f64` total (computed in fixed
/// program order along its epoch walk, so it is identical no matter which
/// worker ran it); [`Self::push`] quantizes that total once — the sum at
/// `Q64.64`, the square at `Q96.32` — and from there everything is
/// associative integer addition. Any partition of the fleet into shards
/// or threads therefore merges to bit-identical accumulators, which is
/// what lets weighted tallies ride the existing determinism and
/// checkpoint/resume contracts unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WeightedCount {
    /// Σ per-DIMM totals, as `Q64.64` fixed point (value × 2⁶⁴),
    /// saturating.
    pub sum_q64: u128,
    /// Σ squared per-DIMM totals, as `Q96.32` fixed point (value × 2³²),
    /// saturating.
    pub sumsq_q32: u128,
}

/// Quantizes a non-negative `f64` to fixed point with `frac_bits`
/// fractional bits, saturating at `u128::MAX`.
fn fixed_point(value: f64, frac_bits: i32) -> u128 {
    let scaled = value.max(0.0) * 2f64.powi(frac_bits);
    if scaled >= 2f64.powi(128) {
        u128::MAX
    } else {
        scaled as u128
    }
}

impl WeightedCount {
    /// Folds one DIMM's weighted total into the accumulator.
    pub fn push(&mut self, total: f64) {
        self.sum_q64 = self.sum_q64.saturating_add(fixed_point(total, 64));
        self.sumsq_q32 = self
            .sumsq_q32
            .saturating_add(fixed_point(total * total, 32));
    }

    /// Merges another accumulator (saturating).
    pub fn merge(&mut self, other: Self) {
        self.sum_q64 = self.sum_q64.saturating_add(other.sum_q64);
        self.sumsq_q32 = self.sumsq_q32.saturating_add(other.sumsq_q32);
    }

    /// The accumulated sum of per-DIMM totals.
    pub fn sum(&self) -> f64 {
        self.sum_q64 as f64 / 2f64.powi(64)
    }

    /// The accumulated sum of squared per-DIMM totals.
    pub fn sum_sq(&self) -> f64 {
        self.sumsq_q32 as f64 / 2f64.powi(32)
    }

    /// Kish effective sample size `(Σw)² / Σw²` — how many unweighted
    /// DIMM trajectories the weighted sample is worth. `0` when empty.
    pub fn effective_n(&self) -> f64 {
        let ss = self.sum_sq();
        if ss <= 0.0 {
            0.0
        } else {
            let s = self.sum();
            s * s / ss
        }
    }
}

/// The full (untruncated) `Binomial(n, p)` probability mass function,
/// `pmf[k] = P(count = k)` for `k in 0..=n` — the exact reference
/// distribution of the likelihood-ratio tables.
pub fn binomial_pmf(n: u32, p: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let mut pmf = vec![0.0; n as usize + 1];
    if p >= 1.0 {
        pmf[n as usize] = 1.0;
        return pmf;
    }
    // pmf(k+1) = pmf(k) · (n−k)/(k+1) · p/(1−p), seeded at (1−p)^n — the
    // same recurrence `CountCdf::binomial` integrates, so sampler and
    // likelihood table agree to the last bit of the shared prefix.
    let odds = p / (1.0 - p);
    let mut mass = (1.0 - p).powi(n as i32);
    for k in 0..=n {
        pmf[k as usize] = mass;
        if k < n {
            mass *= (n - k) as f64 / (k + 1) as f64 * odds;
        }
    }
    pmf
}

/// The rate-inflated arrival-count sampler for one failure mode.
///
/// The biased count is `total = nominal + extra`: the nominal binomial
/// count keeps coming off the main per-cell stream exactly as in the
/// naive run, and `extra ~ Binomial(n, min((bias−1)·p, 0.5))` rides the
/// domain-separated bias stream. [`Self::likelihood`] maps the total back
/// to the nominal measure via the precomputed exact ratio
/// `pmf_nominal(k) / pmf_biased(k)`, where `pmf_biased` is the
/// convolution of the two binomials. With bias 1.0 the extra sampler
/// vanishes (no bias-stream draws, all ratios exactly 1.0).
#[derive(Debug, Clone)]
pub struct BiasedCount {
    extra: Option<CountCdf>,
    lr: Vec<f64>,
}

impl BiasedCount {
    /// Builds the sampler for `Binomial(n, p)` arrivals under `bias`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or `bias` is not finite and
    /// `>= 1`.
    pub fn new(n: u32, p: f64, bias: f64) -> Self {
        assert!(
            bias.is_finite() && bias >= 1.0,
            "bias factor {bias} must be finite and >= 1"
        );
        let p_extra = ((bias - 1.0) * p).min(EXTRA_P_CAP);
        if p_extra <= 0.0 {
            return Self {
                extra: None,
                lr: Vec::new(),
            };
        }
        let nominal = binomial_pmf(n, p);
        let extra = binomial_pmf(n, p_extra);
        let mut biased = vec![0.0; nominal.len() + extra.len() - 1];
        for (i, &a) in nominal.iter().enumerate() {
            for (j, &b) in extra.iter().enumerate() {
                biased[i + j] += a * b;
            }
        }
        let lr = biased
            .iter()
            .enumerate()
            .map(|(k, &pb)| {
                if pb > 0.0 {
                    nominal.get(k).copied().unwrap_or(0.0) / pb
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            extra: Some(CountCdf::binomial(n, p_extra)),
            lr,
        }
    }

    /// Samples the *extra* arrivals off the bias stream (zero draws, zero
    /// arrivals when the inflation is inactive).
    pub fn sample_extra(&self, bias_rng: &mut Rng) -> u32 {
        match &self.extra {
            Some(cdf) => cdf.sample(bias_rng.next_u64()),
            None => 0,
        }
    }

    /// The likelihood ratio `pmf_nominal(total) / pmf_biased(total)` for
    /// a sampled total count (exactly `1.0` when the inflation is
    /// inactive).
    pub fn likelihood(&self, total: u32) -> f64 {
        if self.extra.is_none() {
            return 1.0;
        }
        self.lr.get(total as usize).copied().unwrap_or(0.0)
    }
}

/// One biased Bernoulli coincidence: draws the event at the boosted
/// probability `min(p·bias, 0.5).max(p)` off the **main** stream (the
/// same single draw the naive path makes at `p`), returning the outcome
/// and its likelihood-ratio factor.
///
/// This is the "forced multi-fault coincidence" half of the sampler: a
/// per-word collision probability of `1e-7` boosted by `bias = 1e4`
/// becomes `1e-3`, so transient × stuck-bit and transient × transient
/// overlaps — the words a ChipKill code can actually miscorrect — appear
/// often enough to measure, each weighted by `p / p_boosted`. At bias
/// 1.0 the boosted probability equals `p` and the factor is exactly
/// `1.0`; an impossible event (`p = 0`) is never forced.
pub fn boosted_chance(rng: &mut Rng, p: f64, bias: f64) -> (bool, f64) {
    debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let boosted = (p * bias).min(BOOST_CAP).max(p);
    let hit = rng.chance(boosted);
    let factor = if hit {
        p / boosted
    } else {
        (1.0 - p) / (1.0 - boosted)
    };
    (hit, factor)
}

/// A per-machine-year rate with a 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateEstimate {
    /// Raw (unweighted) events observed in the run — under the biased
    /// measure for importance-sampling runs.
    pub events: u64,
    /// Point estimate, events per machine-year (likelihood-reweighted
    /// for importance-sampling runs).
    pub mean: f64,
    /// 95% CI lower bound per machine-year.
    pub lo: f64,
    /// 95% CI upper bound per machine-year. With zero observed events
    /// this is the rule-of-three bound `3 / machine_years`.
    pub hi: f64,
}

/// Wilson–Hilferty approximation to the `χ²` quantile at standard-normal
/// deviate `z` with `df` degrees of freedom (relative error `< 1e-3` for
/// the `df >= 2` range the Poisson intervals use).
fn chi2_quantile(z: f64, df: f64) -> f64 {
    let a = 2.0 / (9.0 * df);
    df * (1.0 - a + z * a.sqrt()).powi(3).max(0.0)
}

impl RateEstimate {
    /// Naive estimate: `events` observed over `machine_years`, with the
    /// exact-Poisson (Garwood) 95% interval via the Wilson–Hilferty
    /// `χ²` quantile — and the rule-of-three upper bound
    /// `3 / machine_years` when zero events were observed, instead of a
    /// silent `0.000000`.
    pub fn from_count(events: u64, machine_years: f64) -> Self {
        if events == 0 {
            return Self {
                events,
                mean: 0.0,
                lo: 0.0,
                hi: 3.0 / machine_years,
            };
        }
        let k = events as f64;
        Self {
            events,
            mean: k / machine_years,
            lo: chi2_quantile(-Z_95, 2.0 * k) / 2.0 / machine_years,
            hi: chi2_quantile(Z_95, 2.0 * k + 2.0) / 2.0 / machine_years,
        }
    }

    /// Importance-sampling estimate from the weighted accumulator over
    /// `dimms` independent per-DIMM totals: the mean is the weighted sum
    /// over the exposure, the interval is the CLT interval from the
    /// across-DIMM sample variance. Falls back to the conservative
    /// rule-of-three bound of [`Self::from_count`] when no event was
    /// observed at all.
    pub fn from_weighted(
        events: u64,
        weighted: WeightedCount,
        dimms: u64,
        machine_years: f64,
    ) -> Self {
        if events == 0 {
            return Self::from_count(0, machine_years);
        }
        let d = dimms as f64;
        let sum = weighted.sum();
        let variance = if dimms > 1 {
            (d / (d - 1.0)) * (weighted.sum_sq() - sum * sum / d).max(0.0)
        } else {
            0.0
        };
        let half = Z_95 * variance.sqrt();
        Self {
            events,
            mean: sum / machine_years,
            lo: (sum - half).max(0.0) / machine_years,
            hi: (sum + half) / machine_years,
        }
    }

    /// Half-width of the 95% interval as a standard error
    /// (`(hi − lo) / 2·1.96`) — the combination unit of the
    /// IS-vs-naive agreement tests.
    pub fn std_error(&self) -> f64 {
        (self.hi - self.lo) / (2.0 * Z_95)
    }

    /// Compact human-readable form, pinned by regression tests:
    /// `"<4.69e-3 @95%"` for zero observed events (the rule-of-three
    /// upper bound — never a bare `0.000000`), otherwise
    /// `"<mean> [<lo>,<hi>]"`.
    pub fn render(&self) -> String {
        if self.events == 0 {
            format!("<{:.2e} @95%", self.hi)
        } else {
            format!("{:.2e} [{:.1e},{:.1e}]", self.mean, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(1u32, 0.5f64), (18, 1e-4), (36, 0.3), (7, 0.0), (5, 1.0)] {
            let pmf = binomial_pmf(n, p);
            assert_eq!(pmf.len(), n as usize + 1);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} p={p} total={total}");
            assert!(pmf.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn biased_count_is_inert_at_bias_one() {
        let bc = BiasedCount::new(18, 1e-4, 1.0);
        let mut rng = Rng::seeded(1);
        let before = rng.clone();
        assert_eq!(bc.sample_extra(&mut rng), 0);
        // No draw was consumed.
        assert_eq!(rng.next_u64(), before.clone().next_u64());
        for k in 0..40 {
            assert_eq!(bc.likelihood(k), 1.0);
        }
    }

    #[test]
    fn biased_count_expected_weight_is_one() {
        // Analytic check: Σ pmf_biased(k) · lr(k) = Σ pmf_nominal(k) = 1.
        for &(n, p, bias) in &[(18u32, 1e-4f64, 64.0f64), (36, 1e-3, 8.0), (9, 0.05, 300.0)] {
            let bc = BiasedCount::new(n, p, bias);
            let nominal = binomial_pmf(n, p);
            let p_extra = ((bias - 1.0) * p).min(EXTRA_P_CAP);
            let extra = binomial_pmf(n, p_extra);
            let mut total = 0.0;
            for (i, &a) in nominal.iter().enumerate() {
                for (j, &b) in extra.iter().enumerate() {
                    total += a * b * bc.likelihood((i + j) as u32);
                }
            }
            assert!(
                (total - 1.0).abs() < 1e-9,
                "n={n} p={p} bias={bias}: E[w]={total}"
            );
        }
    }

    #[test]
    fn boosted_chance_weights_are_exact() {
        let mut rng = Rng::seeded(2);
        // E[w] = p_b·(p/p_b) + (1−p_b)·((1−p)/(1−p_b)) = 1 identically;
        // check the two branch factors directly.
        let p: f64 = 1e-6;
        let bias: f64 = 1e4;
        let boosted = (p * bias).min(BOOST_CAP);
        let (mut hits, mut draws) = (0u32, 0u32);
        for _ in 0..200_000 {
            let (hit, w) = boosted_chance(&mut rng, p, bias);
            assert!(w.is_finite() && w > 0.0);
            if hit {
                assert!((w - p / boosted).abs() < 1e-18);
                hits += 1;
            }
            draws += 1;
        }
        let rate = f64::from(hits) / f64::from(draws);
        assert!((rate - boosted).abs() < 0.002, "hit rate {rate}");
        // Impossible events are never forced, and bias 1.0 is inert.
        let (hit, w) = boosted_chance(&mut rng, 0.0, 1e6);
        assert!(!hit && w == 1.0);
        let (_, w) = boosted_chance(&mut rng, 0.3, 1.0);
        assert_eq!(w, 1.0);
    }

    #[test]
    fn weighted_count_fixed_point_roundtrip() {
        let mut acc = WeightedCount::default();
        acc.push(1.0);
        acc.push(2.5);
        assert!((acc.sum() - 3.5).abs() < 1e-12);
        assert!((acc.sum_sq() - 7.25).abs() < 1e-9);
        // Integer totals quantize exactly.
        assert_eq!(acc.sum_q64 >> 64, 3);
        let mut other = WeightedCount::default();
        other.push(4.0);
        acc.merge(other);
        assert!((acc.sum() - 7.5).abs() < 1e-12);
        // Saturation instead of overflow.
        let mut big = WeightedCount {
            sum_q64: u128::MAX,
            sumsq_q32: u128::MAX,
        };
        big.push(1e30);
        assert_eq!(big.sum_q64, u128::MAX);
    }

    #[test]
    fn effective_n_matches_kish() {
        let mut acc = WeightedCount::default();
        for _ in 0..8 {
            acc.push(1.0);
        }
        assert!((acc.effective_n() - 8.0).abs() < 1e-9);
        acc.push(8.0);
        // (16)² / (8 + 64) = 256/72
        assert!((acc.effective_n() - 256.0 / 72.0).abs() < 1e-9);
        assert_eq!(WeightedCount::default().effective_n(), 0.0);
    }

    #[test]
    fn poisson_interval_brackets_the_count() {
        let e = RateEstimate::from_count(100, 10.0);
        assert!((e.mean - 10.0).abs() < 1e-12);
        // Exact Garwood interval for k=100: [81.36, 121.63] events.
        assert!((e.lo * 10.0 - 81.36).abs() < 0.2, "lo {}", e.lo);
        assert!((e.hi * 10.0 - 121.63).abs() < 0.2, "hi {}", e.hi);
        assert!(e.lo < e.mean && e.mean < e.hi);
    }

    #[test]
    fn zero_events_render_rule_of_three() {
        let e = RateEstimate::from_count(0, 640.0);
        assert_eq!(e.mean, 0.0);
        assert!((e.hi - 3.0 / 640.0).abs() < 1e-15);
        assert_eq!(e.render(), "<4.69e-3 @95%");
        let weighted = RateEstimate::from_weighted(0, WeightedCount::default(), 64, 640.0);
        assert_eq!(weighted.render(), "<4.69e-3 @95%");
    }

    #[test]
    fn weighted_interval_covers_known_variance() {
        // 4 DIMM totals: 1, 1, 1, 5 → mean 2, sample var 4.
        let mut acc = WeightedCount::default();
        for &t in &[1.0, 1.0, 1.0, 5.0] {
            acc.push(t);
        }
        let e = RateEstimate::from_weighted(8, acc, 4, 2.0);
        assert!((e.mean - 4.0).abs() < 1e-9);
        // Var(total) = 4 · 4 = 16 → se 4, half-width 1.96·4 = 7.84.
        assert!((e.std_error() - 2.0).abs() < 1e-6, "se {}", e.std_error());
        assert!(e.lo >= 0.0 && e.hi > e.mean);
    }
}
