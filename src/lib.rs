//! MUSE ECC: a from-scratch reproduction of *"Revisiting Residue Codes for
//! Modern Memories"* (MICRO 2022).
//!
//! This umbrella crate re-exports the whole workspace under short paths:
//!
//! | Path | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `muse-core` | the MUSE codes: search, codec, ELC, presets |
//! | [`rs`] | `muse-rs` | the Reed-Solomon baseline |
//! | [`faultsim`] | `muse-faultsim` | Monte-Carlo fault injection (Table IV etc.) |
//! | [`lifetime`] | `muse-lifetime` | fleet-lifetime reliability with erasure-mode degraded operation |
//! | [`hw`] | `muse-hw` | VLSI cost model + Verilog emission (Table V) |
//! | [`memsim`] | `muse-memsim` | memory-system simulator (Figures 6 & 7) |
//! | [`secded`] | `muse-secded` | Hsiao / on-die SEC substrates |
//! | [`telemetry`] | `muse-telemetry` | trace events, metrics registry, live progress |
//! | [`gf`] | `muse-gf` | GF(2^s) arithmetic |
//! | [`wideint`] | `muse-wideint` | fixed-width big integers |
//!
//! # Examples
//!
//! ```
//! // ChipKill with spare bits: the paper's core claim in five lines.
//! let code = muse::core::presets::muse_80_69();
//! let payload = code.pack_metadata(0xFEED_F00D, 0b1011);
//! let stored = code.encode(&payload);
//! let corrupted = stored ^ *code.symbol_map().mask(13); // chip 13 dies
//! let recovered = code.decode(&corrupted).payload().expect("ChipKill");
//! assert_eq!(code.unpack_metadata(&recovered), (0xFEED_F00D, 0b1011));
//! ```
//!
//! See `README.md` for the workspace tour, `DESIGN.md` for the system
//! inventory and substitutions, and `EXPERIMENTS.md` for paper-vs-measured
//! results.

pub use muse_core as core;
pub use muse_faultsim as faultsim;
pub use muse_gf as gf;
pub use muse_hw as hw;
pub use muse_lifetime as lifetime;
pub use muse_memsim as memsim;
pub use muse_rs as rs;
pub use muse_secded as secded;
pub use muse_telemetry as telemetry;
pub use muse_wideint as wideint;
